"""The Panda server: the I/O-node side of server-directed collective I/O.

One server process per I/O node.  Lifecycle (paper, section 2):

- the **master server** (server index 0) receives the CollectiveOp from
  the master client and relays it to the other servers;
- each server independently forms its :class:`~repro.core.plan.
  ServerPlan` (round-robin chunks, 1 MB sub-chunks) -- "the servers do
  not communicate with one another during plan formation or while array
  data is being gathered or scattered";
- **writes**: per sub-chunk, in file order, the server requests the
  logical pieces from the clients that hold them, reassembles the
  sub-chunk in traditional order, and appends it with one sequential
  file write; after the last sub-chunk, fsync;
- **reads**: per sub-chunk, one sequential file read, then the pieces
  are scattered to the owning clients;
- completion flows server -> master server -> master client.

Cost model at the server: per-message handling; one staging pass over
every sub-chunk (``copy_time(nbytes, total_piece_runs)``) -- the
assembly/disassembly memcpy between message buffers and the I/O buffer;
and the file-system service time from the disk model.

``config.nonblocking`` switches the write path's piece collection from
the paper's blocking request/reply pairs to posting all requests first
(the paper's stated future improvement).

Fault mode (``config.faults`` set -- see :mod:`repro.faults`):

- the SCHEMA broadcast carries a :class:`~repro.core.recovery.
  SchemaMsg` with degraded-mode directives: server indices whose normal
  plan portion must be skipped, plus relocated plan portions
  (:class:`~repro.core.recovery.RecoveryAssignment`) for the survivors
  to execute;
- piece exchanges become *reliable*: blocking request/reply pairs with
  a per-exchange timeout, content-matched replies and bounded
  exponential-backoff retries (``nonblocking`` is ignored -- a reliable
  exchange keeps one outstanding request to match its reply against);
- the master's completion gather doubles as the failure detector: it
  polls with ``spec.detect_timeout`` and, when an I/O node crashes
  mid-write, re-partitions the dead server's plan over the survivors
  (:func:`~repro.core.recovery.partition_recovery`), hands the shares
  out as RECOVER messages, executes its own share, and records the
  relocations before committing the dataset.  A mid-*read* crash loses
  the crashed node's data and raises
  :class:`~repro.faults.FaultRecoveryError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.plan import (
    ServerPlan,
    SubchunkPlan,
    build_server_plan,
    op_participants,
)
from repro.core.protocol import (
    ArraySpec,
    CollectiveOp,
    FetchRequest,
    OpRejection,
    PieceData,
    ServerDone,
    Tags,
)
from repro.core.recovery import (
    RecoverMsg,
    RecoveryAssignment,
    SchemaMsg,
    partition_recovery,
)
from repro.core.scheduler import (
    AdmissionQueue,
    OpProgress,
    OpSchedRecord,
    SchedOp,
    SchedStats,
    ServerScheduler,
    estimate_op,
)
from repro.faults import FaultRecoveryError
from repro.fs.filesystem import FileSystem
from repro.obs.slo import SLOTracker
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import DataBlock
from repro.schema.regions import Region, runs_within
from repro.schema.reorganize import extract_region, inject_region

__all__ = ["PandaServer"]


class PandaServer:
    """One I/O node's Panda server."""

    def __init__(self, runtime, server_index: int, comm: Communicator,
                 fs: FileSystem) -> None:
        self.runtime = runtime
        self.server_index = server_index
        self.comm = comm
        self.fs = fs
        #: fault mode: harden piece exchanges with timeout/retry and run
        #: the master's gather as a failure detector.
        self._reliable = runtime.injector is not None
        self._src = f"server{server_index}"
        #: scheduled mode: this server's admission-shard index (it is a
        #: shard master), or None.  Single-master mode: the master is
        #: shard 0.  Set by :meth:`_run_scheduled`.
        self._shard: Optional[int] = None
        #: ``slo`` policy, shard masters only: this shard's per-tenant
        #: latency bookkeeping.  Set by :meth:`_run_scheduled`.
        self._slo_tracker: Optional[SLOTracker] = None
        # per-op accounting for the trace/results
        self.bytes_written = 0
        self.bytes_read = 0
        self.subchunks_processed = 0

    def _mark(self, kind: str, /, **detail) -> None:
        """Emit a phase-boundary trace record (no-op when untraced).
        The observability layer (:mod:`repro.obs`) turns these into
        Perfetto tracks and the critical-path phase breakdown."""
        trace = self.runtime.trace
        if trace is not None:
            trace.emit(self.comm.sim.now, self._src, kind, **detail)

    @property
    def is_master(self) -> bool:
        return self.server_index == 0

    @property
    def rank(self) -> int:
        return self.runtime.server_rank(self.server_index)

    # -- main loop ----------------------------------------------------------
    def run(self):
        """The server process: handle collective ops until shutdown.

        With an inter-op scheduler configured, dispatches to
        :meth:`_run_scheduled` instead; the one-op-at-a-time loop below
        is otherwise untouched (the golden determinism test pins its
        timings bit-for-bit)."""
        if self.runtime.config.scheduler is not None:
            yield from self._run_scheduled()
            return
        listen = {Tags.REQUEST, Tags.SHUTDOWN} if self.is_master else \
                 {Tags.SCHEMA, Tags.SHUTDOWN}
        if self._reliable and not self.is_master:
            listen.add(Tags.RECOVER)
        while True:
            msg = yield from self.comm.recv(tags=listen)
            if msg.tag == Tags.SHUTDOWN:
                return
            if msg.tag == Tags.RECOVER:
                yield from self._serve_recover(msg.payload)
                continue
            payload = msg.payload
            skip: Tuple[int, ...] = ()
            recoveries: Tuple[RecoveryAssignment, ...] = ()
            pending_reloc: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
            handled_crashes: Set[int] = set()
            if isinstance(payload, SchemaMsg):
                op = payload.op
                skip = payload.skip
                recoveries = payload.recoveries
            else:
                op: CollectiveOp = payload
            self._mark("srv_op_start", op_id=op.op_id, kind=op.kind)
            yield self.comm.handle_ev()
            if self.is_master:
                self.runtime.catalog_check(op)
                if self._reliable:
                    skip, recoveries, pending_reloc, handled_crashes = \
                        self._fault_directives(op)
                    targets = [self.runtime.server_rank(i)
                               for i in self.runtime.live_servers()]
                    yield from self.comm.bcast_send(
                        targets, Tags.SCHEMA, SchemaMsg(op, skip, recoveries)
                    )
                else:
                    yield from self.comm.bcast_send(
                        self.runtime.server_ranks, Tags.SCHEMA, op
                    )
            # independent plan formation
            yield self.comm.compute_ev(self.comm.spec.plan_formation_overhead)
            self._mark("srv_plan_ready", op_id=op.op_id)
            moved = 0
            if self.server_index not in skip:
                plan = build_server_plan(
                    op, self.server_index, self.runtime.n_io,
                    self.runtime.config,
                )
                if op.kind == "write":
                    moved += yield from self._execute_write(op, plan)
                else:
                    moved += yield from self._execute_read(op, plan)
            # relocated plan portions addressed to this server (crashes
            # known before the op started, or read-back of a dataset
            # that was recovered at write time)
            for a in recoveries:
                if a.survivor_index == self.server_index:
                    moved += yield from self._execute_assignment(op, a)
            self._mark("srv_io_done", op_id=op.op_id, moved=moved)
            done = ServerDone(op.op_id, self.server_index, moved)
            if self.is_master:
                if self.runtime.n_io > 1:
                    if self._reliable:
                        midop = yield from self._gather_with_detection(
                            op, handled_crashes
                        )
                        pending_reloc.update(midop)
                    else:
                        yield from self.comm.gather_recv(
                            self.runtime.server_ranks, Tags.SERVER_DONE
                        )
                if op.kind == "write":
                    if self._reliable:
                        self.runtime.record_relocations(op.dataset,
                                                        pending_reloc)
                    self.runtime.catalog_commit(op)
                yield from self.comm.send(
                    op.master_client, Tags.OP_DONE, done
                )
            else:
                yield from self.comm.send(
                    self.runtime.master_server_rank, Tags.SERVER_DONE, done
                )
            self._mark("srv_op_done", op_id=op.op_id)

    # -- helpers ---------------------------------------------------------------
    def _pieces_of(self, op: CollectiveOp, spec: ArraySpec,
                   item: SubchunkPlan) -> List[Tuple[int, Region]]:
        """(client_rank, piece_region) for everything intersecting a
        sub-chunk, in canonical mesh order.  Memory-mesh position *i*
        belongs to ``op.client_ranks[i]``."""
        return [
            (op.client_ranks[chunk.index], overlap)
            for chunk, overlap in spec.memory_schema.chunks_intersecting(item.region)
        ]

    # -- write path ------------------------------------------------------------
    def _execute_write(self, op: CollectiveOp, plan: ServerPlan):
        fh = self.fs.open(plan.file_name, "w")
        moved = yield from self._write_items(op, fh, plan.items)
        yield from fh.fsync()
        fh.close()
        self.bytes_written += moved
        return moved

    def _write_items(self, op: CollectiveOp, fh, items: Tuple[SubchunkPlan, ...]):
        """Gather-and-write the given sub-chunks into ``fh`` (the items'
        file offsets are contiguous from wherever ``fh`` points, both
        for a normal plan and for a recovery assignment)."""
        moved = 0
        for item in items:
            moved += yield from self._write_one(op, fh, item)
        return moved

    def _write_one(self, op: CollectiveOp, fh, item: SubchunkPlan):
        """Gather and write one sub-chunk -- the unit the inter-op
        scheduler interleaves at."""
        real = self.runtime.real_payloads
        trace = self.runtime.trace
        t0 = self.comm.sim.now if trace is not None else 0.0
        spec = op.arrays[item.array_index]
        pieces = self._pieces_of(op, spec, item)
        buf = np.zeros(item.region.shape, dtype=spec.np_dtype) if real else None
        total_runs = 0
        # data-plane replies are matched on (op_id, subchunk_seq) so a
        # piece of a concurrently scheduled op can never be absorbed here
        is_mine = (lambda m: m.payload.op_id == op.op_id
                   and m.payload.subchunk_seq == item.seq)
        if self._reliable:
            replies = yield from self._fetch_reliable(op, item, pieces)
        elif self.runtime.config.nonblocking:
            # post every request, then take replies in arrival order
            for client_rank, region in pieces:
                req = FetchRequest(op.op_id, item.array_index, region, item.seq)
                yield from self.comm.send(client_rank, Tags.FETCH, req)
            pred = self.comm.match_pred(tag=Tags.DATA, match=is_mine)
            replies = []
            for _ in pieces:
                msg = yield self.comm.recv_ev(pred)
                replies.append(msg)
        else:
            # the paper's blocking request/reply pairs, client order
            replies = []
            for client_rank, region in pieces:
                req = FetchRequest(op.op_id, item.array_index, region, item.seq)
                yield from self.comm.send(client_rank, Tags.FETCH, req)
                msg = yield self.comm.recv_ev(
                    self.comm.match_pred(src=client_rank, tag=Tags.DATA,
                                         match=is_mine)
                )
                replies.append(msg)
        for msg in replies:
            piece: PieceData = msg.payload
            if piece.subchunk_seq != item.seq or piece.op_id != op.op_id:
                raise RuntimeError(
                    f"server {self.server_index}: stray piece "
                    f"{piece.subchunk_seq} during sub-chunk {item.seq}"
                )
            yield self.comm.handle_ev()
            runs, _ = runs_within(piece.region, item.region)
            total_runs += runs
            if real:
                data = piece.block.array.view(spec.np_dtype).reshape(
                    piece.region.shape
                )
                inject_region(buf, item.region.lo, piece.region, data)
        # staging pass: assemble the sub-chunk in traditional order
        yield self.comm.copy_ev(item.nbytes, max(total_runs, 1))
        if trace is not None:
            now = self.comm.sim.now
            trace.emit(now, self._src, "srv_gather", op_id=op.op_id,
                       seq=item.seq, nbytes=item.nbytes,
                       pieces=len(pieces), service=now - t0)
        block = DataBlock.real(buf) if real else DataBlock.virtual(item.nbytes)
        yield from fh.write(block)
        self.subchunks_processed += 1
        return item.nbytes

    def _fetch_reliable(self, op: CollectiveOp, item: SubchunkPlan,
                        pieces: List[Tuple[int, Region]]):
        """Fault-mode piece collection: blocking pairs, each hardened
        with a timeout and bounded exponential-backoff retries.  The
        reply must match the outstanding request exactly (op, sub-chunk,
        region), so a late duplicate from an earlier retry can never be
        taken for the current piece; duplicates the *client* sees are
        idempotent and simply re-answered."""
        injector = self.runtime.injector
        spec = injector.spec
        replies = []
        for client_rank, region in pieces:
            req = FetchRequest(op.op_id, item.array_index, region, item.seq)
            attempt = 0
            while True:
                yield from self.comm.send(client_rank, Tags.FETCH, req)
                msg = yield from self.comm.recv(
                    src=client_rank, tag=Tags.DATA,
                    match=lambda m, _r=region: (
                        m.payload.op_id == op.op_id
                        and m.payload.subchunk_seq == item.seq
                        and m.payload.region == _r
                    ),
                    timeout=injector.backoff_timeout(attempt),
                )
                if msg is not None:
                    replies.append(msg)
                    break
                attempt += 1
                if attempt > spec.max_retries:
                    raise FaultRecoveryError(
                        f"server {self.server_index}: no data from rank "
                        f"{client_rank} for sub-chunk {item.seq} after "
                        f"{spec.max_retries} retries"
                    )
                injector.note_retry(
                    "fetch", server=self.server_index, client=client_rank,
                    seq=item.seq, attempt=attempt,
                )
        return replies

    # -- read path ---------------------------------------------------------------
    def _execute_read(self, op: CollectiveOp, plan: ServerPlan):
        if not self.fs.exists(plan.file_name):
            raise FileNotFoundError(
                f"server {self.server_index}: dataset file "
                f"{plan.file_name!r} does not exist (dataset "
                f"{op.dataset!r} was never written?)"
            )
        fh = self.fs.open(plan.file_name, "r")
        moved = yield from self._read_items(op, fh, plan.items)
        fh.close()
        self.bytes_read += moved
        return moved

    def _read_items(self, op: CollectiveOp, fh, items: Tuple[SubchunkPlan, ...]):
        """Read-and-scatter the given sub-chunks out of ``fh``."""
        moved = 0
        for item in items:
            moved += yield from self._read_one(op, fh, item)
        return moved

    def _read_one(self, op: CollectiveOp, fh, item: SubchunkPlan):
        """Read and scatter one sub-chunk -- the unit the inter-op
        scheduler interleaves at."""
        real = self.runtime.real_payloads
        trace = self.runtime.trace
        spec = op.arrays[item.array_index]
        if fh.offset != item.file_offset:
            fh.seek(item.file_offset)
        block = yield from fh.read(item.nbytes)
        t0 = self.comm.sim.now if trace is not None else 0.0
        if real:
            buf = block.array.view(spec.np_dtype).reshape(item.region.shape)
        pieces = self._pieces_of(op, spec, item)
        total_runs = 0
        for _, region in pieces:
            runs, _ = runs_within(region, item.region)
            total_runs += runs
        # staging pass: carve the sub-chunk into pieces
        yield self.comm.copy_ev(item.nbytes, max(total_runs, 1))
        for client_rank, region in pieces:
            nbytes = region.size * spec.itemsize
            if real:
                data = extract_region(buf, item.region.lo, region)
                pblock = DataBlock.real(data)
            else:
                pblock = DataBlock.virtual(nbytes)
            piece = PieceData(op.op_id, item.array_index, region, pblock,
                              item.seq)
            if self._reliable:
                yield from self._scatter_reliable(op, item, client_rank,
                                                  region, piece, nbytes)
            else:
                yield from self.comm.send(client_rank, Tags.PIECE, piece,
                                          nbytes=nbytes)
        if trace is not None:
            now = self.comm.sim.now
            trace.emit(now, self._src, "srv_scatter", op_id=op.op_id,
                       seq=item.seq, nbytes=item.nbytes,
                       pieces=len(pieces), service=now - t0)
        self.subchunks_processed += 1
        return item.nbytes

    def _scatter_reliable(self, op: CollectiveOp, item: SubchunkPlan,
                          client_rank: int, region: Region,
                          piece: PieceData, nbytes: int):
        """Fault-mode piece delivery: resend until the client's
        PIECE_ACK for this exact piece arrives.  A duplicate delivery
        re-injects the same bytes at the same place -- idempotent -- and
        is re-acknowledged."""
        injector = self.runtime.injector
        spec = injector.spec
        attempt = 0
        while True:
            yield from self.comm.send(client_rank, Tags.PIECE, piece,
                                      nbytes=nbytes)
            ack = yield from self.comm.recv(
                src=client_rank, tag=Tags.PIECE_ACK,
                match=lambda m, _r=region: (
                    m.payload.op_id == op.op_id
                    and m.payload.subchunk_seq == item.seq
                    and m.payload.region == _r
                ),
                timeout=injector.backoff_timeout(attempt),
            )
            if ack is not None:
                return
            attempt += 1
            if attempt > spec.max_retries:
                raise FaultRecoveryError(
                    f"server {self.server_index}: no ack from rank "
                    f"{client_rank} for sub-chunk {item.seq} after "
                    f"{spec.max_retries} retries"
                )
            injector.note_retry(
                "piece", server=self.server_index, client=client_rank,
                seq=item.seq, attempt=attempt,
            )

    # -- recovery ---------------------------------------------------------------
    def _execute_assignment(self, op: CollectiveOp, a: RecoveryAssignment):
        """Execute one relocated plan portion against this server's
        recovery file for it (write: gather from the clients and write;
        read: read and scatter)."""
        if op.kind == "write":
            fh = self.fs.open(a.file_name, "w")
            moved = yield from self._write_items(op, fh, a.items)
            yield from fh.fsync()
            fh.close()
            self.bytes_written += moved
        else:
            fh = self.fs.open(a.file_name, "r")
            moved = yield from self._read_items(op, fh, a.items)
            fh.close()
            self.bytes_read += moved
        return moved

    def _serve_recover(self, rmsg: RecoverMsg):
        """Survivor: execute a mid-op recovery assignment handed over
        by a failure-detecting master, then report it separately
        (``recovery=True``) so the issuer's two gathers stay apart.
        The report goes to ``rmsg.reply_to`` when set -- sharded
        admission, where any shard master may run the recovery -- and
        to the master server otherwise."""
        yield self.comm.handle_ev()
        moved = yield from self._execute_assignment(rmsg.op, rmsg.assignment)
        done = ServerDone(rmsg.op.op_id, self.server_index, moved,
                          recovery=True)
        reply_to = (rmsg.reply_to if rmsg.reply_to >= 0
                    else self.runtime.master_server_rank)
        yield from self.comm.send(reply_to, Tags.SERVER_DONE, done)

    def _fault_directives(self, op: CollectiveOp):
        """Master-only: degraded-mode directives for an op that starts
        with crashes already on the books.

        Writes: skip every crashed server and re-partition its portion
        over the survivors (clients still hold the source data, so the
        whole portion is simply re-gathered).  Reads: route portions
        relocated at write time to the recovery files that hold them;
        data whose only copy is on a crashed node is unreachable.

        Returns ``(skip, recoveries, pending_relocations, crashed)``.
        """
        rt = self.runtime
        crashed = set(rt.crashed_servers)
        if op.kind == "write":
            pending: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
            recoveries: List[RecoveryAssignment] = []
            survivors = rt.live_servers()
            for k in sorted(crashed):
                assignments = partition_recovery(op, k, survivors, rt.n_io,
                                                 rt.config)
                if not assignments:
                    continue  # the crashed server's plan was empty
                recoveries.extend(assignments)
                pending[k] = assignments
                rt.injector.note_recovery(
                    "upfront", op.dataset, k,
                    tuple(a.survivor_index for a in assignments),
                    sum(a.nbytes for a in assignments),
                )
            return tuple(sorted(crashed)), tuple(recoveries), pending, crashed
        stored = rt.relocations.get(op.dataset, {})
        for k in sorted(crashed):
            if k in stored:
                continue  # relocated at write time: survivors hold it
            plan = build_server_plan(op, k, rt.n_io, rt.config)
            if plan.items:
                raise FaultRecoveryError(
                    f"dataset {op.dataset!r}: server {k}'s portion is on a "
                    "crashed node and was never relocated; the data is "
                    "unreachable until the node is repaired"
                )
        recoveries = []
        for k, assignments in sorted(stored.items()):
            for a in assignments:
                if a.survivor_index in crashed:
                    raise FaultRecoveryError(
                        f"dataset {op.dataset!r}: the recovered portion of "
                        f"server {a.crashed_index} lives on server "
                        f"{a.survivor_index}, which is itself crashed"
                    )
            recoveries.extend(assignments)
        skip = tuple(sorted(set(stored) | crashed))
        return skip, tuple(recoveries), {}, crashed

    def _gather_with_detection(self, op: CollectiveOp, handled: Set[int]):
        """Master-only: gather ordinary completions, polling the failure
        detector every ``detect_timeout``.  The simulation grants a
        perfect detector (``runtime.crashed_servers``), so a slow server
        is never declared dead -- a timeout alone proves nothing.
        Returns the mid-op relocations {crashed index: assignments}."""
        rt = self.runtime
        spec = rt.injector.spec
        handled = set(handled)
        expected = {i for i in range(1, rt.n_io) if i not in handled}
        done: Set[int] = set()
        pending: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
        while expected - done:
            msg = yield from self.comm.recv(
                tag=Tags.SERVER_DONE,
                match=lambda m: (m.payload.op_id == op.op_id
                                 and not m.payload.recovery),
                timeout=spec.detect_timeout,
            )
            if msg is not None:
                done.add(msg.payload.server_index)
                continue
            for k in sorted(rt.crashed_servers - handled):
                handled.add(k)
                expected.discard(k)
                if k in done:
                    # finished before dying: its file is complete but
                    # unreachable until the node is repaired (next run)
                    continue
                if op.kind == "read":
                    raise FaultRecoveryError(
                        f"server {k} crashed while scattering dataset "
                        f"{op.dataset!r}; its unsent pieces are unreachable"
                    )
                assignments = yield from self._recover_midop(op, k)
                if assignments:
                    pending[k] = assignments
        return pending

    def _recover_midop(self, op: CollectiveOp, k: int):
        """Failure-detecting master (the single master, or any shard
        master in sharded mode): re-partition crashed server ``k``'s
        plan over the survivors, hand out the shares, execute its own,
        and wait for the survivors' recovery completions."""
        rt = self.runtime
        injector = rt.injector
        survivors = rt.live_servers()
        assignments = partition_recovery(op, k, survivors, rt.n_io, rt.config)
        if not assignments:
            return ()
        injector.note_recovery(
            "midop", op.dataset, k,
            tuple(a.survivor_index for a in assignments),
            sum(a.nbytes for a in assignments),
        )
        waiting: Set[int] = set()
        for a in assignments:
            if a.survivor_index == self.server_index:
                continue
            yield from self.comm.send(
                rt.server_rank(a.survivor_index), Tags.RECOVER,
                RecoverMsg(op, a, reply_to=self.rank),
            )
            waiting.add(a.survivor_index)
        for a in assignments:
            if a.survivor_index == self.server_index:
                yield from self._execute_assignment(op, a)
        while waiting:
            msg = yield from self.comm.recv(
                tag=Tags.SERVER_DONE,
                match=lambda m: (m.payload.op_id == op.op_id
                                 and m.payload.recovery),
                timeout=injector.spec.detect_timeout,
            )
            if msg is not None:
                waiting.discard(msg.payload.server_index)
                continue
            dead = rt.crashed_servers & waiting
            if dead:
                raise FaultRecoveryError(
                    f"server(s) {sorted(dead)} crashed while recovering "
                    f"server {k}'s portion of {op.dataset!r}; double faults "
                    "during recovery are not survivable"
                )
            # Two shard masters recovering concurrently may each hold a
            # recovery assignment addressed to the other; serve any such
            # RECOVER now, or both gathers spin until their peer's is
            # done that never comes.  With a single master no one else
            # sends RECOVER, so this drain is a no-op there.
            rmsg = self.comm.try_recv(tag=Tags.RECOVER)
            if rmsg is not None:
                yield from self._serve_recover(rmsg.payload)
            # other crashes are left for the outer gather to handle
        return assignments

    # -- scheduled mode (config.scheduler set) -------------------------------
    #
    # Several admitted ops interleave on every server at sub-chunk
    # granularity under the configured policy; see
    # :mod:`repro.core.scheduler` for the architecture.  Phase marks in
    # this mode use the globally unique ``admit_seq`` as their op_id
    # detail, because per-group op_id counters all start at 0 and the
    # observability layer pairs phase marks per (source, op_id).

    def _run_scheduled(self):
        """Multi-tenant server loop: admission control at the shard
        master(s), policy-driven sub-chunk interleaving everywhere.

        The loop alternates three activities, never blocking while any
        admitted op has work: (1) drain control messages (REQUEST /
        SCHED / SERVER_DONE / RECOVER / SHUTDOWN) without consuming
        simulated time; (2) shard masters only: admit eligible queued
        ops into free in-flight slots; (3) execute exactly one sub-chunk
        of the op the policy picks.  Only when none of these make
        progress does it block on the next control message (with the
        failure-detector timeout in fault mode).

        With ``n_shards > 1`` the first ``n_shards`` servers each run
        the admission side for their consistent-hash slice of the
        datasets (see :class:`~repro.core.scheduler.ShardMap`); every
        server, shard master or not, executes whatever mix of shards'
        ops lands on it.  ``n_shards == 1`` is the historical
        single-master loop, bit-for-bit."""
        rt = self.runtime
        cfg = rt.config.scheduler
        n_shards = cfg.n_shards
        sharded = n_shards > 1
        self._shard = self.server_index if self.server_index < n_shards \
            else None
        sched = ServerScheduler(cfg, self.server_index)
        if self._shard is not None:
            listen = {Tags.REQUEST, Tags.SERVER_DONE, Tags.SHUTDOWN}
            if sharded:
                # shard masters also execute peer shards' ops and (fault
                # mode) serve peer owners' mid-op recovery assignments
                listen |= {Tags.SCHED}
                if self._reliable:
                    listen |= {Tags.RECOVER}
        else:
            listen = {Tags.SCHED, Tags.SHUTDOWN}
            if self._reliable:
                listen.add(Tags.RECOVER)
        queue = None
        gate = None
        if self._shard is not None:
            # interleaved numbering keeps admit_seq globally unique with
            # zero coordination and self-describing: the issuing shard
            # is admit_seq % n_shards
            queue = AdmissionQueue(cfg.queue_limit, sched.policy,
                                   seq_start=self._shard, seq_step=n_shards)
            self._sched_stats = SchedStats(policy=cfg.policy)
            if sharded:
                rt.sched_stats.shards[self._shard] = self._sched_stats
            else:
                rt.sched_stats = self._sched_stats
            if cfg.policy == "slo":
                # per-shard tracker, deliberately un-gossiped: every
                # demote/shed decision is local to this master's loop,
                # so it is deterministic under dispatch perturbation
                self._slo_tracker = SLOTracker(cfg.slo, shard=self._shard)
                rt.slo_trackers[self._shard] = self._slo_tracker

            def gate(m, _queue=queue):
                # backpressure: while the admission queue is full,
                # REQUESTs stay in the mailbox unread, so the queue
                # (and the memory it pins) never exceeds its bound
                return m.tag != Tags.REQUEST or not _queue.full

        #: shard master only: admit_seq -> _OpCompletion for in-flight
        #: ops this shard admitted
        self._completions: Dict[int, _OpCompletion] = {}
        abort_orphans = sharded and self._reliable
        shutdown = False
        while True:
            if abort_orphans and rt.crashed_servers:
                # before draining (possibly re-issued) SCHEDs: drop
                # active work admitted by a now-crashed shard master
                self._sched_abort_orphans(sched)
            progressed = False
            while True:
                msg = self.comm.try_recv(tags=listen, match=gate)
                if msg is None:
                    break
                progressed = True
                shutdown |= yield from self._sched_control(msg, sched, queue)
            if queue is not None:
                progressed |= yield from self._sched_admit(sched, queue)
            p = sched.pick()
            if p is not None:
                yield from self._sched_step(p, sched)
                continue
            if progressed:
                continue
            if shutdown and sched.idle and not self._completions \
                    and (queue is None or not len(queue)):
                return
            if self._reliable and self._shard is not None \
                    and self._completions:
                msg = yield from self.comm.recv(
                    tags=listen, match=gate,
                    timeout=rt.injector.spec.detect_timeout,
                )
                if msg is None:
                    yield from self._sched_detect(sched)
                    continue
            else:
                msg = yield from self.comm.recv(tags=listen, match=gate)
            shutdown |= yield from self._sched_control(msg, sched, queue)

    def _sched_control(self, msg, sched: ServerScheduler, queue):
        """Handle one control-plane message; returns True on SHUTDOWN."""
        if msg.tag == Tags.SHUTDOWN:
            return True
        yield self.comm.handle_ev()
        if msg.tag == Tags.REQUEST:
            yield from self._sched_enqueue(msg.payload, queue)
        elif msg.tag == Tags.SCHED:
            yield from self._sched_start(msg.payload, sched)
        elif msg.tag == Tags.SERVER_DONE:
            done: ServerDone = msg.payload
            if done.recovery:
                # recovery completions are consumed inside
                # _recover_midop's own matched gather; one here is a bug
                raise RuntimeError(
                    f"server {self.server_index}: stray recovery completion "
                    f"from server {done.server_index}"
                )
            yield from self._sched_credit(done.admit_seq, done.server_index,
                                          done.bytes_moved)
        else:  # RECOVER (fault mode; sent by a failure-detecting owner)
            yield from self._serve_recover(msg.payload)
        return False

    def _sched_enqueue(self, op: CollectiveOp, queue: AdmissionQueue):
        """Shard master: one REQUEST enters the bounded admission
        queue.  Sharded mode tags the trace records with the shard, so
        the obs layer can break queue depth and admission latency out
        per shard; single-master records stay byte-identical.

        Under the ``slo`` policy the tenant's budget is consulted
        exactly once, here: a tenant beyond the shed threshold gets an
        immediate OP_REJECTED reply (the REQUEST never enters the
        queue); one merely over budget is enqueued demoted.  Both
        verdicts are fixed at this deterministic instant and never
        re-evaluated, which is what keeps the policy race-detector
        green."""
        rt = self.runtime
        now = self.comm.sim.now
        tracker = self._slo_tracker
        tenant = op.master_client
        if tracker is not None and tracker.should_shed(tenant, now):
            tracker.note_shed(tenant, now)
            rejection = OpRejection(
                op_id=op.op_id, dataset=op.dataset, tenant=tenant,
                p99=tracker.turnaround_p99(tenant) or 0.0,
                budget=tracker.budget.turnaround_p99,
                shard=self._shard,
            )
            if rt.trace is not None:
                extra = {"shard": self._shard} if rt.n_shards > 1 else {}
                rt.trace.emit(now, "sched", "sched_reject", op_id=op.op_id,
                              dataset=op.dataset, tenant=tenant,
                              p99=rejection.p99, budget=rejection.budget,
                              **extra)
            yield from self.comm.send(op.master_client, Tags.OP_REJECTED,
                                      rejection)
            return
        demoted = tracker is not None and tracker.exhausted(tenant, now)
        est = estimate_op(op, rt.n_io, self.comm.spec, rt.config)
        entry = queue.push(op, est, now, demoted=demoted)
        if demoted:
            tracker.note_demoted(tenant)
        stats = self._sched_stats
        stats.records[entry.seq] = OpSchedRecord(
            admit_seq=entry.seq, op_id=op.op_id, group=op.client_ranks,
            dataset=op.dataset, kind=op.kind, priority=op.priority,
            estimate=est, arrived=now,
        )
        stats.queue_peak = max(stats.queue_peak, queue.peak)
        if rt.trace is not None:
            extra = {"shard": self._shard} if rt.n_shards > 1 else {}
            if demoted:
                extra["demoted"] = True
            rt.trace.emit(now, "sched", "sched_enqueue", admit_seq=entry.seq,
                          op_id=op.op_id, dataset=op.dataset, kind=op.kind,
                          qlen=len(queue), **extra)

    def _sched_admit(self, sched: ServerScheduler, queue: AdmissionQueue):
        """Shard master: admit eligible queued ops while in-flight
        slots are free.  Returns True when anything was admitted."""
        rt = self.runtime
        cfg = rt.config.scheduler
        sharded = rt.n_shards > 1
        admitted = False
        while len(self._completions) < cfg.max_in_flight:
            in_flight = [c.sched.op for c in self._completions.values()]
            entry = queue.admissible(in_flight)
            if entry is None:
                break
            queue.remove(entry)
            op = entry.op
            rt.catalog_check(op)
            skip: Tuple[int, ...] = ()
            recoveries: Tuple[RecoveryAssignment, ...] = ()
            pending_reloc: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
            if self._reliable:
                skip, recoveries, pending_reloc, _crashed = \
                    self._fault_directives(op)
            sop = SchedOp(op=op, admit_seq=entry.seq, priority=op.priority,
                          estimate=entry.estimate, skip=skip,
                          recoveries=recoveries, shard=self._shard,
                          weight=queue.policy.drr_weight(op.priority,
                                                         entry.demoted))
            # a live server participates unless it is skip-listed with
            # no recovery assignment routed to it: a fully skipped
            # server has nothing to execute and must not be contacted
            # (it may be a repaired node about to be re-crashed by the
            # injector, and its stale on-disk portion is superseded by
            # the survivors' recovery files).  The single master always
            # participates: it runs the completion bookkeeping.  Shard
            # masters join only when the plan gives them work, so an op
            # whose chunks live elsewhere never serializes behind its
            # owner's disk (and creates no empty files there).
            assigned = {a.survivor_index for a in recoveries}
            if sharded:
                workers = set(op_participants(op, rt.n_io))
                participants = [i for i in rt.live_servers()
                                if (i in workers and i not in skip)
                                or i in assigned]
            else:
                participants = [i for i in rt.live_servers()
                                if i == self.server_index or i not in skip
                                or i in assigned]
            comp = _OpCompletion(sop, participants, pending_reloc)
            self._completions[entry.seq] = comp
            stats = self._sched_stats
            rec = stats.records[entry.seq]
            rec.admitted = self.comm.sim.now
            stats.in_flight_peak = max(stats.in_flight_peak,
                                       len(self._completions))
            if rt.trace is not None:
                extra = {"shard": self._shard} if sharded else {}
                rt.trace.emit(rec.admitted, "sched", "sched_admit",
                              admit_seq=entry.seq, op_id=op.op_id,
                              dataset=op.dataset, wait=rec.queue_wait,
                              in_flight=len(self._completions), **extra)
            if sharded or self._reliable:
                targets = [rt.server_rank(i) for i in participants
                           if i != self.server_index]
                yield from self.comm.bcast_send(targets, Tags.SCHED, sop)
            else:
                yield from self.comm.bcast_send(rt.server_ranks, Tags.SCHED,
                                                sop)
            if self.server_index in participants:
                yield from self._sched_start(sop, sched)
            else:
                # this owner has no execution share; with an empty
                # participant set the op may already be completable
                yield from self._sched_maybe_complete(entry.seq, comp)
            admitted = True
        return admitted

    def _sched_start(self, sop: SchedOp, sched: ServerScheduler):
        """Form this server's plan for a newly admitted op and hand it
        to the service policy."""
        op = sop.op
        self._mark("srv_op_start", op_id=sop.admit_seq, kind=op.kind)
        yield self.comm.compute_ev(self.comm.spec.plan_formation_overhead)
        plan = build_server_plan(op, self.server_index, self.runtime.n_io,
                                 self.runtime.config)
        assignments = tuple(a for a in sop.recoveries
                            if a.survivor_index == self.server_index)
        p = sched.start(sop, plan, assignments)
        self._mark("srv_plan_ready", op_id=sop.admit_seq)
        if p.done:
            # nothing to execute here (directed to skip, no recovery
            # assignments): report completion immediately
            yield from self._sched_finish(p, sched)

    def _sched_step(self, p: OpProgress, sched: ServerScheduler):
        """Execute one sub-chunk of the picked op; segment open /
        fsync / close edges ride the boundary steps."""
        op = p.op
        seg = p.segments[p.seg_index]
        if p.fh is None:
            if op.kind == "write":
                p.fh = self.fs.open(seg.file_name, "w")
            else:
                if not self.fs.exists(seg.file_name):
                    raise FileNotFoundError(
                        f"server {self.server_index}: dataset file "
                        f"{seg.file_name!r} does not exist (dataset "
                        f"{op.dataset!r} was never written?)"
                    )
                p.fh = self.fs.open(seg.file_name, "r")
        if p.item_index < len(seg.items):
            item = seg.items[p.item_index]
            if op.kind == "write":
                moved = yield from self._write_one(op, p.fh, item)
                self.bytes_written += moved
            else:
                moved = yield from self._read_one(op, p.fh, item)
                self.bytes_read += moved
            p.item_index += 1
            p.moved += moved
            sched.policy.charged(p, item.nbytes)
        if p.item_index >= len(seg.items):
            if op.kind == "write":
                yield from p.fh.fsync()
            p.fh.close()
            p.fh = None
            p.seg_index += 1
            p.item_index = 0
            if p.done:
                yield from self._sched_finish(p, sched)

    def _sched_finish(self, p: OpProgress, sched: ServerScheduler):
        """This server's share of one op is complete: report it to the
        shard master that admitted it (locally, when that is us)."""
        sched.finish(p)
        self._mark("srv_io_done", op_id=p.sched.admit_seq, moved=p.moved)
        if self._shard is not None and p.sched.shard == self._shard:
            yield from self._sched_credit(p.sched.admit_seq,
                                          self.server_index, p.moved)
        else:
            done = ServerDone(p.op.op_id, self.server_index, p.moved,
                              admit_seq=p.sched.admit_seq)
            yield from self.comm.send(
                self.runtime.server_rank(p.sched.shard),
                Tags.SERVER_DONE, done,
            )
            self._mark("srv_op_done", op_id=p.sched.admit_seq)

    def _sched_credit(self, admit_seq: int, server_index: int, moved: int):
        """Shard master: record one server's completion of an op this
        shard admitted."""
        comp = self._completions.get(admit_seq)
        if comp is None:
            raise RuntimeError(
                f"server {self.server_index}: completion for unknown "
                f"scheduled op {admit_seq} from server {server_index}"
            )
        comp.done.add(server_index)
        comp.moved += moved
        yield from self._sched_maybe_complete(admit_seq, comp)

    def _sched_maybe_complete(self, admit_seq: int, comp: "_OpCompletion"):
        """Shard master: when the last expected server has reported,
        commit the op and notify its master client."""
        if comp.expected - comp.done:
            return
        rt = self.runtime
        op = comp.sched.op
        del self._completions[admit_seq]
        if op.kind == "write":
            if self._reliable:
                rt.record_relocations(op.dataset, comp.pending_reloc)
            rt.catalog_commit(op)
        done = ServerDone(op.op_id, self.server_index, comp.moved,
                          admit_seq=admit_seq)
        yield from self.comm.send(op.master_client, Tags.OP_DONE, done)
        now = self.comm.sim.now
        rec = self._sched_stats.records[admit_seq]
        rec.completed = now
        rec.moved = comp.moved
        if self._slo_tracker is not None:
            # samples arrive in this shard master's deterministic
            # completion order; the tenant key is the op's master client
            self._slo_tracker.record(op.master_client, rec.queue_wait,
                                     rec.turnaround, now)
        if rt.trace is not None:
            extra = {"shard": self._shard} if rt.n_shards > 1 else {}
            rt.trace.emit(now, "sched", "sched_done", admit_seq=admit_seq,
                          op_id=op.op_id, dataset=op.dataset, moved=comp.moved,
                          service=now - rec.admitted,
                          turnaround=rec.turnaround, **extra)
        self._mark("srv_op_done", op_id=admit_seq)

    def _sched_abort_orphans(self, sched: ServerScheduler) -> None:
        """Sharded fault mode: drop active work admitted by a shard
        master that has since crashed.  The op's master client detects
        the crash after ``detect_timeout`` and re-sends its REQUEST to
        the dataset's next live owner on the ring, which re-admits and
        re-broadcasts the op from scratch -- a partially executed
        orphan write is harmless, since the re-run truncates and
        rewrites the same deterministic bytes.  But the orphan itself
        must stop: once the re-run completes, the op's clients move on,
        and the orphan's remaining fetches would wait on ranks that no
        longer serve this op.  Running at every loop iteration -- at
        sub-chunk boundaries, *before* any newly arrived SCHED is
        drained -- guarantees the orphan is gone before the re-issued
        op can start on this server."""
        rt = self.runtime
        dead = [p for p in sched.active.values()
                if p.sched.shard in rt.crashed_servers
                and p.sched.shard != self._shard]
        for p in dead:
            if p.fh is not None:
                p.fh.close()
                p.fh = None
            sched.finish(p)
            self._mark("srv_op_aborted", op_id=p.sched.admit_seq,
                       shard=p.sched.shard)

    def _sched_detect(self, sched: ServerScheduler):
        """Shard master, fault mode: the blocking receive timed out.
        Scan the (perfect) failure detector for crashes affecting any
        in-flight op this shard admitted and run the same mid-op write
        recovery the unscheduled gather performs."""
        rt = self.runtime
        for admit_seq in sorted(self._completions):
            comp = self._completions.get(admit_seq)
            if comp is None:
                continue
            op = comp.sched.op
            for k in sorted(rt.crashed_servers & comp.expected):
                comp.expected.discard(k)
                if k in comp.done:
                    # finished before dying: its file is complete but
                    # unreachable until the node is repaired (next run)
                    continue
                if op.kind == "read":
                    plan = build_server_plan(op, k, rt.n_io, rt.config)
                    had_work = (plan.items and k not in comp.sched.skip) or \
                        any(a.survivor_index == k
                            for a in comp.sched.recoveries)
                    if had_work:
                        raise FaultRecoveryError(
                            f"server {k} crashed while scattering dataset "
                            f"{op.dataset!r}; its unsent pieces are "
                            "unreachable"
                        )
                    continue  # trivially empty share: nothing was lost
                assignments = yield from self._recover_midop(op, k)
                if assignments:
                    comp.pending_reloc[k] = assignments
            yield from self._sched_maybe_complete(admit_seq, comp)


class _OpCompletion:
    """Master-side completion bookkeeping for one in-flight scheduled
    op: which servers still owe a SERVER_DONE, bytes credited so far,
    and relocations to persist at commit."""

    __slots__ = ("sched", "expected", "done", "moved", "pending_reloc")

    def __init__(self, sched: SchedOp, expected,
                 pending_reloc: Dict[int, Tuple[RecoveryAssignment, ...]],
                 ) -> None:
        self.sched = sched
        self.expected: Set[int] = set(expected)
        self.done: Set[int] = set()
        self.moved = 0
        self.pending_reloc = dict(pending_reloc)

"""The Panda server: the I/O-node side of server-directed collective I/O.

One server process per I/O node.  Lifecycle (paper, section 2):

- the **master server** (server index 0) receives the CollectiveOp from
  the master client and relays it to the other servers;
- each server independently forms its :class:`~repro.core.plan.
  ServerPlan` (round-robin chunks, 1 MB sub-chunks) -- "the servers do
  not communicate with one another during plan formation or while array
  data is being gathered or scattered";
- **writes**: per sub-chunk, in file order, the server requests the
  logical pieces from the clients that hold them, reassembles the
  sub-chunk in traditional order, and appends it with one sequential
  file write; after the last sub-chunk, fsync;
- **reads**: per sub-chunk, one sequential file read, then the pieces
  are scattered to the owning clients;
- completion flows server -> master server -> master client.

Cost model at the server: per-message handling; one staging pass over
every sub-chunk (``copy_time(nbytes, total_piece_runs)``) -- the
assembly/disassembly memcpy between message buffers and the I/O buffer;
and the file-system service time from the disk model.

``config.nonblocking`` switches the write path's piece collection from
the paper's blocking request/reply pairs to posting all requests first
(the paper's stated future improvement).

Fault mode (``config.faults`` set -- see :mod:`repro.faults`):

- the SCHEMA broadcast carries a :class:`~repro.core.recovery.
  SchemaMsg` with degraded-mode directives: server indices whose normal
  plan portion must be skipped, plus relocated plan portions
  (:class:`~repro.core.recovery.RecoveryAssignment`) for the survivors
  to execute;
- piece exchanges become *reliable*: blocking request/reply pairs with
  a per-exchange timeout, content-matched replies and bounded
  exponential-backoff retries (``nonblocking`` is ignored -- a reliable
  exchange keeps one outstanding request to match its reply against);
- the master's completion gather doubles as the failure detector: it
  polls with ``spec.detect_timeout`` and, when an I/O node crashes
  mid-write, re-partitions the dead server's plan over the survivors
  (:func:`~repro.core.recovery.partition_recovery`), hands the shares
  out as RECOVER messages, executes its own share, and records the
  relocations before committing the dataset.  A mid-*read* crash loses
  the crashed node's data and raises
  :class:`~repro.faults.FaultRecoveryError`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.plan import ServerPlan, SubchunkPlan, build_server_plan
from repro.core.protocol import (
    ArraySpec,
    CollectiveOp,
    FetchRequest,
    PieceData,
    ServerDone,
    Tags,
)
from repro.core.recovery import (
    RecoverMsg,
    RecoveryAssignment,
    SchemaMsg,
    partition_recovery,
)
from repro.faults import FaultRecoveryError
from repro.fs.filesystem import FileSystem
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import DataBlock
from repro.schema.regions import Region, runs_within
from repro.schema.reorganize import extract_region, inject_region

__all__ = ["PandaServer"]


class PandaServer:
    """One I/O node's Panda server."""

    def __init__(self, runtime, server_index: int, comm: Communicator,
                 fs: FileSystem) -> None:
        self.runtime = runtime
        self.server_index = server_index
        self.comm = comm
        self.fs = fs
        #: fault mode: harden piece exchanges with timeout/retry and run
        #: the master's gather as a failure detector.
        self._reliable = runtime.injector is not None
        self._src = f"server{server_index}"
        # per-op accounting for the trace/results
        self.bytes_written = 0
        self.bytes_read = 0
        self.subchunks_processed = 0

    def _mark(self, kind: str, /, **detail) -> None:
        """Emit a phase-boundary trace record (no-op when untraced).
        The observability layer (:mod:`repro.obs`) turns these into
        Perfetto tracks and the critical-path phase breakdown."""
        trace = self.runtime.trace
        if trace is not None:
            trace.emit(self.comm.sim.now, self._src, kind, **detail)

    @property
    def is_master(self) -> bool:
        return self.server_index == 0

    @property
    def rank(self) -> int:
        return self.runtime.server_rank(self.server_index)

    # -- main loop ----------------------------------------------------------
    def run(self):
        """The server process: handle collective ops until shutdown."""
        listen = {Tags.REQUEST, Tags.SHUTDOWN} if self.is_master else \
                 {Tags.SCHEMA, Tags.SHUTDOWN}
        if self._reliable and not self.is_master:
            listen.add(Tags.RECOVER)
        while True:
            msg = yield from self.comm.recv(tags=listen)
            if msg.tag == Tags.SHUTDOWN:
                return
            if msg.tag == Tags.RECOVER:
                yield from self._serve_recover(msg.payload)
                continue
            payload = msg.payload
            skip: Tuple[int, ...] = ()
            recoveries: Tuple[RecoveryAssignment, ...] = ()
            pending_reloc: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
            handled_crashes: Set[int] = set()
            if isinstance(payload, SchemaMsg):
                op = payload.op
                skip = payload.skip
                recoveries = payload.recoveries
            else:
                op: CollectiveOp = payload
            self._mark("srv_op_start", op_id=op.op_id, kind=op.kind)
            yield from self.comm.handle()
            if self.is_master:
                self.runtime.catalog_check(op)
                if self._reliable:
                    skip, recoveries, pending_reloc, handled_crashes = \
                        self._fault_directives(op)
                    targets = [self.runtime.server_rank(i)
                               for i in self.runtime.live_servers()]
                    yield from self.comm.bcast_send(
                        targets, Tags.SCHEMA, SchemaMsg(op, skip, recoveries)
                    )
                else:
                    yield from self.comm.bcast_send(
                        self.runtime.server_ranks, Tags.SCHEMA, op
                    )
            # independent plan formation
            yield from self.comm.compute(self.comm.spec.plan_formation_overhead)
            self._mark("srv_plan_ready", op_id=op.op_id)
            moved = 0
            if self.server_index not in skip:
                plan = build_server_plan(
                    op, self.server_index, self.runtime.n_io,
                    self.runtime.config,
                )
                if op.kind == "write":
                    moved += yield from self._execute_write(op, plan)
                else:
                    moved += yield from self._execute_read(op, plan)
            # relocated plan portions addressed to this server (crashes
            # known before the op started, or read-back of a dataset
            # that was recovered at write time)
            for a in recoveries:
                if a.survivor_index == self.server_index:
                    moved += yield from self._execute_assignment(op, a)
            self._mark("srv_io_done", op_id=op.op_id, moved=moved)
            done = ServerDone(op.op_id, self.server_index, moved)
            if self.is_master:
                if self.runtime.n_io > 1:
                    if self._reliable:
                        midop = yield from self._gather_with_detection(
                            op, handled_crashes
                        )
                        pending_reloc.update(midop)
                    else:
                        yield from self.comm.gather_recv(
                            self.runtime.server_ranks, Tags.SERVER_DONE
                        )
                if op.kind == "write":
                    if self._reliable:
                        self.runtime.record_relocations(op.dataset,
                                                        pending_reloc)
                    self.runtime.catalog_commit(op)
                yield from self.comm.send(
                    op.master_client, Tags.OP_DONE, done
                )
            else:
                yield from self.comm.send(
                    self.runtime.master_server_rank, Tags.SERVER_DONE, done
                )
            self._mark("srv_op_done", op_id=op.op_id)

    # -- helpers ---------------------------------------------------------------
    def _pieces_of(self, op: CollectiveOp, spec: ArraySpec,
                   item: SubchunkPlan) -> List[Tuple[int, Region]]:
        """(client_rank, piece_region) for everything intersecting a
        sub-chunk, in canonical mesh order.  Memory-mesh position *i*
        belongs to ``op.client_ranks[i]``."""
        return [
            (op.client_ranks[chunk.index], overlap)
            for chunk, overlap in spec.memory_schema.chunks_intersecting(item.region)
        ]

    # -- write path ------------------------------------------------------------
    def _execute_write(self, op: CollectiveOp, plan: ServerPlan):
        fh = self.fs.open(plan.file_name, "w")
        moved = yield from self._write_items(op, fh, plan.items)
        yield from fh.fsync()
        fh.close()
        self.bytes_written += moved
        return moved

    def _write_items(self, op: CollectiveOp, fh, items: Tuple[SubchunkPlan, ...]):
        """Gather-and-write the given sub-chunks into ``fh`` (the items'
        file offsets are contiguous from wherever ``fh`` points, both
        for a normal plan and for a recovery assignment)."""
        moved = 0
        real = self.runtime.real_payloads
        trace = self.runtime.trace
        t0 = 0.0
        for item in items:
            if trace is not None:
                t0 = self.comm.sim.now
            spec = op.arrays[item.array_index]
            pieces = self._pieces_of(op, spec, item)
            buf = np.zeros(item.region.shape, dtype=spec.np_dtype) if real else None
            total_runs = 0
            if self._reliable:
                replies = yield from self._fetch_reliable(op, item, pieces)
            elif self.runtime.config.nonblocking:
                # post every request, then take replies in arrival order
                for client_rank, region in pieces:
                    req = FetchRequest(op.op_id, item.array_index, region, item.seq)
                    yield from self.comm.send(client_rank, Tags.FETCH, req)
                replies = []
                for _ in pieces:
                    msg = yield from self.comm.recv(tag=Tags.DATA)
                    replies.append(msg)
            else:
                # the paper's blocking request/reply pairs, client order
                replies = []
                for client_rank, region in pieces:
                    req = FetchRequest(op.op_id, item.array_index, region, item.seq)
                    yield from self.comm.send(client_rank, Tags.FETCH, req)
                    msg = yield from self.comm.recv(src=client_rank, tag=Tags.DATA)
                    replies.append(msg)
            for msg in replies:
                piece: PieceData = msg.payload
                if piece.subchunk_seq != item.seq or piece.op_id != op.op_id:
                    raise RuntimeError(
                        f"server {self.server_index}: stray piece "
                        f"{piece.subchunk_seq} during sub-chunk {item.seq}"
                    )
                yield from self.comm.handle()
                runs, _ = runs_within(piece.region, item.region)
                total_runs += runs
                if real:
                    data = piece.block.array.view(spec.np_dtype).reshape(
                        piece.region.shape
                    )
                    inject_region(buf, item.region.lo, piece.region, data)
            # staging pass: assemble the sub-chunk in traditional order
            yield from self.comm.copy(item.nbytes, max(total_runs, 1))
            if trace is not None:
                now = self.comm.sim.now
                trace.emit(now, self._src, "srv_gather", op_id=op.op_id,
                           seq=item.seq, nbytes=item.nbytes,
                           pieces=len(pieces), service=now - t0)
            block = DataBlock.real(buf) if real else DataBlock.virtual(item.nbytes)
            yield from fh.write(block)
            moved += item.nbytes
            self.subchunks_processed += 1
        return moved

    def _fetch_reliable(self, op: CollectiveOp, item: SubchunkPlan,
                        pieces: List[Tuple[int, Region]]):
        """Fault-mode piece collection: blocking pairs, each hardened
        with a timeout and bounded exponential-backoff retries.  The
        reply must match the outstanding request exactly (op, sub-chunk,
        region), so a late duplicate from an earlier retry can never be
        taken for the current piece; duplicates the *client* sees are
        idempotent and simply re-answered."""
        injector = self.runtime.injector
        spec = injector.spec
        replies = []
        for client_rank, region in pieces:
            req = FetchRequest(op.op_id, item.array_index, region, item.seq)
            attempt = 0
            while True:
                yield from self.comm.send(client_rank, Tags.FETCH, req)
                msg = yield from self.comm.recv(
                    src=client_rank, tag=Tags.DATA,
                    match=lambda m, _r=region: (
                        m.payload.op_id == op.op_id
                        and m.payload.subchunk_seq == item.seq
                        and m.payload.region == _r
                    ),
                    timeout=injector.backoff_timeout(attempt),
                )
                if msg is not None:
                    replies.append(msg)
                    break
                attempt += 1
                if attempt > spec.max_retries:
                    raise FaultRecoveryError(
                        f"server {self.server_index}: no data from rank "
                        f"{client_rank} for sub-chunk {item.seq} after "
                        f"{spec.max_retries} retries"
                    )
                injector.note_retry(
                    "fetch", server=self.server_index, client=client_rank,
                    seq=item.seq, attempt=attempt,
                )
        return replies

    # -- read path ---------------------------------------------------------------
    def _execute_read(self, op: CollectiveOp, plan: ServerPlan):
        if not self.fs.exists(plan.file_name):
            raise FileNotFoundError(
                f"server {self.server_index}: dataset file "
                f"{plan.file_name!r} does not exist (dataset "
                f"{op.dataset!r} was never written?)"
            )
        fh = self.fs.open(plan.file_name, "r")
        moved = yield from self._read_items(op, fh, plan.items)
        fh.close()
        self.bytes_read += moved
        return moved

    def _read_items(self, op: CollectiveOp, fh, items: Tuple[SubchunkPlan, ...]):
        """Read-and-scatter the given sub-chunks out of ``fh``."""
        moved = 0
        real = self.runtime.real_payloads
        trace = self.runtime.trace
        for item in items:
            spec = op.arrays[item.array_index]
            if fh.offset != item.file_offset:
                fh.seek(item.file_offset)
            block = yield from fh.read(item.nbytes)
            t0 = self.comm.sim.now if trace is not None else 0.0
            if real:
                buf = block.array.view(spec.np_dtype).reshape(item.region.shape)
            pieces = self._pieces_of(op, spec, item)
            total_runs = 0
            for _, region in pieces:
                runs, _ = runs_within(region, item.region)
                total_runs += runs
            # staging pass: carve the sub-chunk into pieces
            yield from self.comm.copy(item.nbytes, max(total_runs, 1))
            for client_rank, region in pieces:
                nbytes = region.size * spec.itemsize
                if real:
                    data = extract_region(buf, item.region.lo, region)
                    pblock = DataBlock.real(data)
                else:
                    pblock = DataBlock.virtual(nbytes)
                piece = PieceData(op.op_id, item.array_index, region, pblock,
                                  item.seq)
                if self._reliable:
                    yield from self._scatter_reliable(op, item, client_rank,
                                                      region, piece, nbytes)
                else:
                    yield from self.comm.send(client_rank, Tags.PIECE, piece,
                                              nbytes=nbytes)
            if trace is not None:
                now = self.comm.sim.now
                trace.emit(now, self._src, "srv_scatter", op_id=op.op_id,
                           seq=item.seq, nbytes=item.nbytes,
                           pieces=len(pieces), service=now - t0)
            moved += item.nbytes
            self.subchunks_processed += 1
        return moved

    def _scatter_reliable(self, op: CollectiveOp, item: SubchunkPlan,
                          client_rank: int, region: Region,
                          piece: PieceData, nbytes: int):
        """Fault-mode piece delivery: resend until the client's
        PIECE_ACK for this exact piece arrives.  A duplicate delivery
        re-injects the same bytes at the same place -- idempotent -- and
        is re-acknowledged."""
        injector = self.runtime.injector
        spec = injector.spec
        attempt = 0
        while True:
            yield from self.comm.send(client_rank, Tags.PIECE, piece,
                                      nbytes=nbytes)
            ack = yield from self.comm.recv(
                src=client_rank, tag=Tags.PIECE_ACK,
                match=lambda m, _r=region: (
                    m.payload.op_id == op.op_id
                    and m.payload.subchunk_seq == item.seq
                    and m.payload.region == _r
                ),
                timeout=injector.backoff_timeout(attempt),
            )
            if ack is not None:
                return
            attempt += 1
            if attempt > spec.max_retries:
                raise FaultRecoveryError(
                    f"server {self.server_index}: no ack from rank "
                    f"{client_rank} for sub-chunk {item.seq} after "
                    f"{spec.max_retries} retries"
                )
            injector.note_retry(
                "piece", server=self.server_index, client=client_rank,
                seq=item.seq, attempt=attempt,
            )

    # -- recovery ---------------------------------------------------------------
    def _execute_assignment(self, op: CollectiveOp, a: RecoveryAssignment):
        """Execute one relocated plan portion against this server's
        recovery file for it (write: gather from the clients and write;
        read: read and scatter)."""
        if op.kind == "write":
            fh = self.fs.open(a.file_name, "w")
            moved = yield from self._write_items(op, fh, a.items)
            yield from fh.fsync()
            fh.close()
            self.bytes_written += moved
        else:
            fh = self.fs.open(a.file_name, "r")
            moved = yield from self._read_items(op, fh, a.items)
            fh.close()
            self.bytes_read += moved
        return moved

    def _serve_recover(self, rmsg: RecoverMsg):
        """Non-master: execute a mid-op recovery assignment handed over
        by the master's failure detector, then report it separately
        (``recovery=True``) so the master's two gathers stay apart."""
        yield from self.comm.handle()
        moved = yield from self._execute_assignment(rmsg.op, rmsg.assignment)
        done = ServerDone(rmsg.op.op_id, self.server_index, moved,
                          recovery=True)
        yield from self.comm.send(
            self.runtime.master_server_rank, Tags.SERVER_DONE, done
        )

    def _fault_directives(self, op: CollectiveOp):
        """Master-only: degraded-mode directives for an op that starts
        with crashes already on the books.

        Writes: skip every crashed server and re-partition its portion
        over the survivors (clients still hold the source data, so the
        whole portion is simply re-gathered).  Reads: route portions
        relocated at write time to the recovery files that hold them;
        data whose only copy is on a crashed node is unreachable.

        Returns ``(skip, recoveries, pending_relocations, crashed)``.
        """
        rt = self.runtime
        crashed = set(rt.crashed_servers)
        if op.kind == "write":
            pending: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
            recoveries: List[RecoveryAssignment] = []
            survivors = rt.live_servers()
            for k in sorted(crashed):
                assignments = partition_recovery(op, k, survivors, rt.n_io,
                                                 rt.config)
                if not assignments:
                    continue  # the crashed server's plan was empty
                recoveries.extend(assignments)
                pending[k] = assignments
                rt.injector.note_recovery(
                    "upfront", op.dataset, k,
                    tuple(a.survivor_index for a in assignments),
                    sum(a.nbytes for a in assignments),
                )
            return tuple(sorted(crashed)), tuple(recoveries), pending, crashed
        stored = rt.relocations.get(op.dataset, {})
        for k in sorted(crashed):
            if k in stored:
                continue  # relocated at write time: survivors hold it
            plan = build_server_plan(op, k, rt.n_io, rt.config)
            if plan.items:
                raise FaultRecoveryError(
                    f"dataset {op.dataset!r}: server {k}'s portion is on a "
                    "crashed node and was never relocated; the data is "
                    "unreachable until the node is repaired"
                )
        recoveries = []
        for k, assignments in sorted(stored.items()):
            for a in assignments:
                if a.survivor_index in crashed:
                    raise FaultRecoveryError(
                        f"dataset {op.dataset!r}: the recovered portion of "
                        f"server {a.crashed_index} lives on server "
                        f"{a.survivor_index}, which is itself crashed"
                    )
            recoveries.extend(assignments)
        skip = tuple(sorted(set(stored) | crashed))
        return skip, tuple(recoveries), {}, crashed

    def _gather_with_detection(self, op: CollectiveOp, handled: Set[int]):
        """Master-only: gather ordinary completions, polling the failure
        detector every ``detect_timeout``.  The simulation grants a
        perfect detector (``runtime.crashed_servers``), so a slow server
        is never declared dead -- a timeout alone proves nothing.
        Returns the mid-op relocations {crashed index: assignments}."""
        rt = self.runtime
        spec = rt.injector.spec
        handled = set(handled)
        expected = {i for i in range(1, rt.n_io) if i not in handled}
        done: Set[int] = set()
        pending: Dict[int, Tuple[RecoveryAssignment, ...]] = {}
        while expected - done:
            msg = yield from self.comm.recv(
                tag=Tags.SERVER_DONE,
                match=lambda m: (m.payload.op_id == op.op_id
                                 and not m.payload.recovery),
                timeout=spec.detect_timeout,
            )
            if msg is not None:
                done.add(msg.payload.server_index)
                continue
            for k in sorted(rt.crashed_servers - handled):
                handled.add(k)
                expected.discard(k)
                if k in done:
                    # finished before dying: its file is complete but
                    # unreachable until the node is repaired (next run)
                    continue
                if op.kind == "read":
                    raise FaultRecoveryError(
                        f"server {k} crashed while scattering dataset "
                        f"{op.dataset!r}; its unsent pieces are unreachable"
                    )
                assignments = yield from self._recover_midop(op, k)
                if assignments:
                    pending[k] = assignments
        return pending

    def _recover_midop(self, op: CollectiveOp, k: int):
        """Master-only: re-partition crashed server ``k``'s plan over
        the survivors, hand out the shares, execute its own, and wait
        for the survivors' recovery completions."""
        rt = self.runtime
        injector = rt.injector
        survivors = rt.live_servers()
        assignments = partition_recovery(op, k, survivors, rt.n_io, rt.config)
        if not assignments:
            return ()
        injector.note_recovery(
            "midop", op.dataset, k,
            tuple(a.survivor_index for a in assignments),
            sum(a.nbytes for a in assignments),
        )
        waiting: Set[int] = set()
        for a in assignments:
            if a.survivor_index == self.server_index:
                continue
            yield from self.comm.send(
                rt.server_rank(a.survivor_index), Tags.RECOVER,
                RecoverMsg(op, a),
            )
            waiting.add(a.survivor_index)
        for a in assignments:
            if a.survivor_index == self.server_index:
                yield from self._execute_assignment(op, a)
        while waiting:
            msg = yield from self.comm.recv(
                tag=Tags.SERVER_DONE,
                match=lambda m: (m.payload.op_id == op.op_id
                                 and m.payload.recovery),
                timeout=injector.spec.detect_timeout,
            )
            if msg is not None:
                waiting.discard(msg.payload.server_index)
                continue
            dead = rt.crashed_servers & waiting
            if dead:
                raise FaultRecoveryError(
                    f"server(s) {sorted(dead)} crashed while recovering "
                    f"server {k}'s portion of {op.dataset!r}; double faults "
                    "during recovery are not survivable"
                )
            # crashes elsewhere are left for the outer gather to handle
        return assignments

"""The Panda server: the I/O-node side of server-directed collective I/O.

One server process per I/O node.  Lifecycle (paper, section 2):

- the **master server** (server index 0) receives the CollectiveOp from
  the master client and relays it to the other servers;
- each server independently forms its :class:`~repro.core.plan.
  ServerPlan` (round-robin chunks, 1 MB sub-chunks) -- "the servers do
  not communicate with one another during plan formation or while array
  data is being gathered or scattered";
- **writes**: per sub-chunk, in file order, the server requests the
  logical pieces from the clients that hold them, reassembles the
  sub-chunk in traditional order, and appends it with one sequential
  file write; after the last sub-chunk, fsync;
- **reads**: per sub-chunk, one sequential file read, then the pieces
  are scattered to the owning clients;
- completion flows server -> master server -> master client.

Cost model at the server: per-message handling; one staging pass over
every sub-chunk (``copy_time(nbytes, total_piece_runs)``) -- the
assembly/disassembly memcpy between message buffers and the I/O buffer;
and the file-system service time from the disk model.

``config.nonblocking`` switches the write path's piece collection from
the paper's blocking request/reply pairs to posting all requests first
(the paper's stated future improvement).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.plan import ServerPlan, SubchunkPlan, build_server_plan
from repro.core.protocol import (
    ArraySpec,
    CollectiveOp,
    FetchRequest,
    PieceData,
    ServerDone,
    Tags,
)
from repro.fs.filesystem import FileSystem
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import DataBlock
from repro.schema.regions import Region, runs_within
from repro.schema.reorganize import extract_region, inject_region

__all__ = ["PandaServer"]


class PandaServer:
    """One I/O node's Panda server."""

    def __init__(self, runtime, server_index: int, comm: Communicator,
                 fs: FileSystem) -> None:
        self.runtime = runtime
        self.server_index = server_index
        self.comm = comm
        self.fs = fs
        # per-op accounting for the trace/results
        self.bytes_written = 0
        self.bytes_read = 0
        self.subchunks_processed = 0

    @property
    def is_master(self) -> bool:
        return self.server_index == 0

    @property
    def rank(self) -> int:
        return self.runtime.server_rank(self.server_index)

    # -- main loop ----------------------------------------------------------
    def run(self):
        """The server process: handle collective ops until shutdown."""
        listen = {Tags.REQUEST, Tags.SHUTDOWN} if self.is_master else \
                 {Tags.SCHEMA, Tags.SHUTDOWN}
        while True:
            msg = yield from self.comm.recv(tags=listen)
            if msg.tag == Tags.SHUTDOWN:
                return
            op: CollectiveOp = msg.payload
            yield from self.comm.handle()
            if self.is_master:
                self.runtime.catalog_check(op)
                yield from self.comm.bcast_send(
                    self.runtime.server_ranks, Tags.SCHEMA, op
                )
            # independent plan formation
            yield from self.comm.compute(self.comm.spec.plan_formation_overhead)
            plan = build_server_plan(
                op, self.server_index, self.runtime.n_io, self.runtime.config
            )
            if op.kind == "write":
                moved = yield from self._execute_write(op, plan)
            else:
                moved = yield from self._execute_read(op, plan)
            done = ServerDone(op.op_id, self.server_index, moved)
            if self.is_master:
                if self.runtime.n_io > 1:
                    yield from self.comm.gather_recv(
                        self.runtime.server_ranks, Tags.SERVER_DONE
                    )
                if op.kind == "write":
                    self.runtime.catalog_commit(op)
                yield from self.comm.send(
                    op.master_client, Tags.OP_DONE, done
                )
            else:
                yield from self.comm.send(
                    self.runtime.master_server_rank, Tags.SERVER_DONE, done
                )

    # -- helpers ---------------------------------------------------------------
    def _pieces_of(self, op: CollectiveOp, spec: ArraySpec,
                   item: SubchunkPlan) -> List[Tuple[int, Region]]:
        """(client_rank, piece_region) for everything intersecting a
        sub-chunk, in canonical mesh order.  Memory-mesh position *i*
        belongs to ``op.client_ranks[i]``."""
        return [
            (op.client_ranks[chunk.index], overlap)
            for chunk, overlap in spec.memory_schema.chunks_intersecting(item.region)
        ]

    # -- write path ------------------------------------------------------------
    def _execute_write(self, op: CollectiveOp, plan: ServerPlan):
        fh = self.fs.open(plan.file_name, "w")
        moved = 0
        real = self.runtime.real_payloads
        for item in plan.items:
            spec = op.arrays[item.array_index]
            pieces = self._pieces_of(op, spec, item)
            buf = np.zeros(item.region.shape, dtype=spec.np_dtype) if real else None
            total_runs = 0
            if self.runtime.config.nonblocking:
                # post every request, then take replies in arrival order
                for client_rank, region in pieces:
                    req = FetchRequest(op.op_id, item.array_index, region, item.seq)
                    yield from self.comm.send(client_rank, Tags.FETCH, req)
                replies = []
                for _ in pieces:
                    msg = yield from self.comm.recv(tag=Tags.DATA)
                    replies.append(msg)
            else:
                # the paper's blocking request/reply pairs, client order
                replies = []
                for client_rank, region in pieces:
                    req = FetchRequest(op.op_id, item.array_index, region, item.seq)
                    yield from self.comm.send(client_rank, Tags.FETCH, req)
                    msg = yield from self.comm.recv(src=client_rank, tag=Tags.DATA)
                    replies.append(msg)
            for msg in replies:
                piece: PieceData = msg.payload
                if piece.subchunk_seq != item.seq or piece.op_id != op.op_id:
                    raise RuntimeError(
                        f"server {self.server_index}: stray piece "
                        f"{piece.subchunk_seq} during sub-chunk {item.seq}"
                    )
                yield from self.comm.handle()
                runs, _ = runs_within(piece.region, item.region)
                total_runs += runs
                if real:
                    data = piece.block.array.view(spec.np_dtype).reshape(
                        piece.region.shape
                    )
                    inject_region(buf, item.region.lo, piece.region, data)
            # staging pass: assemble the sub-chunk in traditional order
            yield from self.comm.copy(item.nbytes, max(total_runs, 1))
            block = DataBlock.real(buf) if real else DataBlock.virtual(item.nbytes)
            yield from fh.write(block)
            moved += item.nbytes
            self.subchunks_processed += 1
        yield from fh.fsync()
        fh.close()
        self.bytes_written += moved
        return moved

    # -- read path ---------------------------------------------------------------
    def _execute_read(self, op: CollectiveOp, plan: ServerPlan):
        if not self.fs.exists(plan.file_name):
            raise FileNotFoundError(
                f"server {self.server_index}: dataset file "
                f"{plan.file_name!r} does not exist (dataset "
                f"{op.dataset!r} was never written?)"
            )
        fh = self.fs.open(plan.file_name, "r")
        moved = 0
        real = self.runtime.real_payloads
        for item in plan.items:
            spec = op.arrays[item.array_index]
            if fh.offset != item.file_offset:
                fh.seek(item.file_offset)
            block = yield from fh.read(item.nbytes)
            if real:
                buf = block.array.view(spec.np_dtype).reshape(item.region.shape)
            pieces = self._pieces_of(op, spec, item)
            total_runs = 0
            for _, region in pieces:
                runs, _ = runs_within(region, item.region)
                total_runs += runs
            # staging pass: carve the sub-chunk into pieces
            yield from self.comm.copy(item.nbytes, max(total_runs, 1))
            for client_rank, region in pieces:
                nbytes = region.size * spec.itemsize
                if real:
                    data = extract_region(buf, item.region.lo, region)
                    pblock = DataBlock.real(data)
                else:
                    pblock = DataBlock.virtual(nbytes)
                piece = PieceData(op.op_id, item.array_index, region, pblock,
                                  item.seq)
                yield from self.comm.send(client_rank, Tags.PIECE, piece,
                                          nbytes=nbytes)
            moved += item.nbytes
            self.subchunks_processed += 1
        fh.close()
        self.bytes_read += moved
        return moved

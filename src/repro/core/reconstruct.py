"""External reconstruction of Panda datasets from server files.

These helpers play the role of the paper's "data consumers": programs
that open the files Panda's servers wrote -- *without* going through
Panda -- and reassemble arrays from the chunk layout recorded in the
``.schema`` catalog.  They exist for three reasons:

1. **verification** -- tests reconstruct arrays straight from the byte
   store and compare with what the application wrote, independently of
   the read protocol;
2. the paper's **migration story** -- "the data can be migrated to a
   sequential machine with the array in a single file in traditional
   order by simply concatenating all the files on the i/o nodes
   together" (section 3).  :func:`concatenate_server_files` does the
   concatenation and :func:`is_traditional_order` states when it is
   valid;
3. **tooling** -- an example shows a "visualizer on a sequential
   platform" consuming a chunked dataset.

Only meaningful in real-payload mode.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.plan import build_server_plan, dataset_file
from repro.core.protocol import ArraySpec, CollectiveOp

__all__ = [
    "reconstruct_array",
    "concatenate_server_files",
    "is_traditional_order",
]


def _spec_of(op: CollectiveOp, array_name: str) -> tuple[int, ArraySpec]:
    for i, a in enumerate(op.arrays):
        if a.name == array_name:
            return i, a
    raise KeyError(f"array {array_name!r} not in dataset {op.dataset!r}")


def reconstruct_array(runtime, dataset: str, array_name: str) -> np.ndarray:
    """Reassemble one array of a dataset from the server files, using
    only the catalog metadata and the deterministic plan math."""
    if not runtime.real_payloads:
        raise ValueError("reconstruction requires real payloads")
    op = runtime.catalog[dataset]
    array_index, spec = _spec_of(op, array_name)
    out = np.zeros(spec.shape, dtype=spec.np_dtype)
    for s in range(runtime.n_io):
        plan = build_server_plan(op, s, runtime.n_io, runtime.config)
        raw = runtime.filesystem(s).read_all_bytes(plan.file_name)
        for item in plan.items:
            if item.array_index != array_index:
                continue
            piece = np.frombuffer(
                raw[item.file_offset : item.file_offset + item.nbytes],
                dtype=spec.np_dtype,
            ).reshape(item.region.shape)
            out[item.region.slices()] = piece
    return out


def is_traditional_order(spec: ArraySpec) -> bool:
    """True when the disk schema is ``BLOCK,*,*,...`` -- i.e. only the
    first dimension distributed -- so that concatenating the server
    files yields the array in row-major (traditional) order."""
    dists = spec.disk_schema.dists
    return dists[0].kind == "BLOCK" and all(
        d.kind == "NONE" for d in dists[1:]
    )


def concatenate_server_files(runtime, dataset: str) -> bytes:
    """The migration path of the paper: concatenate the dataset's server
    files in server order.  For a single-array dataset in a traditional-
    order (``BLOCK,*,...``) disk schema this is the array's row-major
    byte stream.  Raises when the layout does not support it."""
    if not runtime.real_payloads:
        raise ValueError("concatenation requires real payloads")
    op = runtime.catalog[dataset]
    if len(op.arrays) != 1:
        raise ValueError(
            "file concatenation is only meaningful for single-array datasets"
        )
    spec = op.arrays[0]
    if not is_traditional_order(spec):
        raise ValueError(
            f"disk schema {spec.disk_schema!r} is not traditional order "
            "(BLOCK,*,...); concatenation would interleave chunks"
        )
    n_chunks = len(list(spec.disk_schema.chunks()))
    if n_chunks > runtime.n_io:
        # chunk i lives on server i mod S; with more chunks than servers
        # the concatenation interleaves rounds and is not row-major
        raise ValueError(
            f"{n_chunks} disk chunks across {runtime.n_io} servers wrap "
            "around; declare a disk mesh of at most the number of I/O nodes"
        )
    parts: List[bytes] = []
    for s in range(runtime.n_io):
        path = dataset_file(dataset, s)
        fs = runtime.filesystem(s)
        if fs.exists(path):
            parts.append(fs.read_all_bytes(path))
    return b"".join(parts)

"""Lightweight profiling hooks for the wall-clock hot path.

Two facilities:

- the global performance counters (re-exported from
  :mod:`repro.counters`): events scheduled/fast-pathed, payload bytes
  physically copied, plan- and geometry-cache hit rates.  These are
  host-side observability -- they never affect simulated time;
- :func:`profile`, a ``cProfile`` context manager for ad-hoc "where did
  the wall-clock go" investigations::

      from repro.bench import profiling

      with profiling.profile(top=15):
          run_figure(EXPERIMENTS["fig4"])
      print(profiling.snapshot())

``benchmarks/bench_wallclock.py`` uses both to publish
``BENCH_wallclock.json``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator

from repro.counters import COUNTERS, PerfCounters

__all__ = ["COUNTERS", "PerfCounters", "reset", "snapshot", "profile"]


def reset() -> None:
    """Zero all global performance counters."""
    COUNTERS.reset()


def snapshot() -> dict:
    """Current counter values as a plain dict."""
    return COUNTERS.snapshot()


@contextmanager
def profile(top: int = 20, sort: str = "cumulative",
            stream=None) -> Iterator[cProfile.Profile]:
    """Run the body under cProfile and print the ``top`` entries.

    Yields the :class:`cProfile.Profile` so callers can post-process it
    (``dump_stats`` etc.) instead of, or in addition to, the printout.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats(sort).print_stats(top)
        print(buf.getvalue(), file=stream)

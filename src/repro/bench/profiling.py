"""Lightweight profiling hooks for the wall-clock hot path.

Two facilities:

- the global performance counters (re-exported from
  :mod:`repro.counters`): events scheduled/fast-pathed, payload bytes
  physically copied, plan- and geometry-cache hit rates.  These are
  host-side observability -- they never affect simulated time;
- :func:`profile`, a ``cProfile`` context manager for ad-hoc "where did
  the wall-clock go" investigations::

      from repro.bench import profiling

      with profiling.profile(top=15):
          run_figure(EXPERIMENTS["fig4"])
      print(profiling.snapshot())

``benchmarks/bench_wallclock.py`` uses both to publish
``BENCH_wallclock.json``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator

from repro.counters import COUNTERS, PerfCounters

__all__ = [
    "COUNTERS", "PerfCounters", "reset", "snapshot", "clear_caches", "profile",
]


def reset() -> None:
    """Zero all global performance counters."""
    COUNTERS.reset()


def clear_caches() -> None:
    """Empty every process-wide pure-function memo (plan items, chunk
    lists, region intersections, contiguous-run decompositions).

    The caches are correctness-neutral -- they memoise pure geometry --
    but they bleed across suites: a second run of the same figure hits
    where the first missed.  The benchmark harness calls this (plus
    :func:`reset`) before each suite so published counter values are
    exact and independent of suite order."""
    from repro.core.plan import clear_plan_cache
    from repro.schema.chunking import clear_geometry_caches
    from repro.schema.regions import clear_runs_cache

    clear_plan_cache()
    clear_geometry_caches()
    clear_runs_cache()


def snapshot() -> dict:
    """Current counter values as a plain dict."""
    return COUNTERS.snapshot()


@contextmanager
def profile(top: int = 20, sort: str = "cumulative",
            stream=None) -> Iterator[cProfile.Profile]:
    """Run the body under cProfile and print the ``top`` entries.

    Yields the :class:`cProfile.Profile` so callers can post-process it
    (``dump_stats`` etc.) instead of, or in addition to, the printout.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats(sort).print_stats(top)
        print(buf.getvalue(), file=stream)

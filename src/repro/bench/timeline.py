"""Text timelines of I/O activity, rendered from a run's trace.

The paper's performance sections reason about *phases*: when a server
is reading its disk, when it is gathering from clients, when the
startup handshake happens.  :func:`disk_timeline` turns a traced run
into a fixed-width Gantt strip per I/O node, so examples and debugging
sessions can see the overlap structure instead of inferring it:

    ionode0.disk |--WWWWWWWWWWWW--WWWWWWWWWWWWW-|
    ionode1.disk |--WWWWWWWWWWWWWWWWWWWWWWWWW---|

``W``/``R`` mark time buckets dominated by disk writes/reads, ``-`` is
idle (from the disk's point of view: protocol and network time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.trace import Trace

__all__ = ["disk_timeline", "activity_spans"]


def activity_spans(trace: Trace, kind: str) -> Dict[str, List[Tuple[float, float]]]:
    """Per-source (start, end) spans of traced disk activity of one
    kind.  Records carry their completion time and service duration."""
    spans: Dict[str, List[Tuple[float, float]]] = {}
    for rec in trace.select(kind=kind):
        service = rec.detail.get("service", 0.0)
        spans.setdefault(rec.source, []).append((rec.time - service, rec.time))
    return spans


def disk_timeline(trace: Trace, width: int = 60,
                  t0: Optional[float] = None,
                  t1: Optional[float] = None) -> str:
    """Render per-I/O-node disk activity as fixed-width strips."""
    writes = activity_spans(trace, "disk_write")
    reads = activity_spans(trace, "disk_read")
    sources = sorted(set(writes) | set(reads))
    if not sources:
        return "(no disk activity traced)"
    all_spans = [s for m in (writes, reads) for v in m.values() for s in v]
    lo = min(s[0] for s in all_spans) if t0 is None else t0
    hi = max(s[1] for s in all_spans) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1e-9
    bucket = (hi - lo) / width

    def busy_in_bucket(spans, b):
        b_lo = lo + b * bucket
        b_hi = b_lo + bucket
        return sum(
            max(0.0, min(e, b_hi) - max(s, b_lo)) for s, e in spans
        )

    lines = [f"timeline {lo:.3f}s .. {hi:.3f}s  ({bucket * 1000:.1f} ms/char)"]
    label_w = max(len(s) for s in sources)
    for src in sources:
        strip = []
        for b in range(width):
            w = busy_in_bucket(writes.get(src, []), b)
            r = busy_in_bucket(reads.get(src, []), b)
            if w == 0 and r == 0:
                strip.append("-")
            elif w >= r:
                strip.append("W")
            else:
                strip.append("R")
        lines.append(f"{src.rjust(label_w)} |{''.join(strip)}|")
    return "\n".join(lines)

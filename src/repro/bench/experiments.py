"""The paper's experiment grid, one definition per figure.

Array sizes are the paper's 16-512 MB sweep; shapes are 3-D arrays of
doubles chosen so that doubling the size doubles one dimension (the
paper does not state exact shapes beyond "a single 3D array of size
16-512 MB" and the 512x512x512 example, so we use power-of-two shapes
whose total bytes match).

Expected bands come from the paper's text and are asserted (loosely) by
the benchmark suite:

- Figs 3/4: "from 85-98% of peak AIX performance at each i/o node";
- Figs 5/6: "near 90% of peak MPI performance in most cases", with
  normalised throughput declining for small arrays as the ~13 ms
  startup overhead dominates;
- Figs 7/8: "from 68-95% of peak AIX performance", slightly below
  natural chunking;
- Fig 9: "from 38-86% of peak MPI performance".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.machine import MB

__all__ = ["Experiment", "EXPERIMENTS", "experiment", "shape_for_mb"]

#: 3-D shapes of float64 arrays totalling the given MB.
_SHAPES: Dict[int, Tuple[int, int, int]] = {
    16: (128, 128, 128),
    32: (128, 128, 256),
    64: (128, 256, 256),
    128: (256, 256, 256),
    256: (256, 256, 512),
    512: (256, 512, 512),
}


def shape_for_mb(size_mb: int) -> Tuple[int, int, int]:
    """Shape of the experiment array for a given size in MB."""
    try:
        shape = _SHAPES[size_mb]
    except KeyError:
        raise ValueError(
            f"no canonical shape for {size_mb} MB; known: {sorted(_SHAPES)}"
        ) from None
    assert shape[0] * shape[1] * shape[2] * 8 == size_mb * MB
    return shape


@dataclass(frozen=True)
class Experiment:
    """One figure of the paper."""

    figure: str
    title: str
    kind: str  # "read" | "write"
    n_compute: int
    ionodes: Tuple[int, ...]
    sizes_mb: Tuple[int, ...]
    disk_schema: str  # "natural" | "traditional"
    fast_disk: bool
    #: (lo, hi) expected normalised-throughput band from the paper's text
    band: Tuple[float, float]

    def shape(self, size_mb: int) -> Tuple[int, int, int]:
        return shape_for_mb(size_mb)


_SIZES = (16, 32, 64, 128, 256, 512)

EXPERIMENTS: Dict[str, Experiment] = {
    e.figure: e
    for e in [
        Experiment(
            "fig3", "read, natural chunking, 8 compute nodes",
            "read", 8, (2, 4, 8), _SIZES, "natural", False, (0.85, 0.98),
        ),
        Experiment(
            "fig4", "write, natural chunking, 8 compute nodes",
            "write", 8, (2, 4, 8), _SIZES, "natural", False, (0.85, 0.98),
        ),
        Experiment(
            "fig5", "read, natural chunking, 32 compute nodes, fast disk",
            "read", 32, (2, 4, 8), _SIZES, "natural", True, (0.60, 0.95),
        ),
        Experiment(
            "fig6", "write, natural chunking, 32 compute nodes, fast disk",
            "write", 32, (2, 4, 8), _SIZES, "natural", True, (0.60, 0.95),
        ),
        Experiment(
            "fig7", "read, traditional order on disk, 32 compute nodes",
            "read", 32, (2, 4, 6, 8), _SIZES, "traditional", False,
            (0.68, 0.95),
        ),
        Experiment(
            "fig8", "write, traditional order on disk, 32 compute nodes",
            "write", 32, (2, 4, 6, 8), _SIZES, "traditional", False,
            (0.68, 0.95),
        ),
        Experiment(
            "fig9", "write, traditional order, 16 compute nodes, fast disk",
            "write", 16, (2, 4, 6, 8), _SIZES, "traditional", True,
            (0.38, 0.86),
        ),
    ]
}


def experiment(figure: str) -> Experiment:
    return EXPERIMENTS[figure]

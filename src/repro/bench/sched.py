"""Concurrent multi-application workloads for the inter-op scheduler.

One runner shared by ``python -m repro sched``,
``benchmarks/bench_scheduler.py`` and the scheduler test suite: split
the compute nodes into ``n_apps`` disjoint client groups, each writing
its own array to the shared I/O nodes, scheduled by the policy under
test (or by the paper's one-op-at-a-time loop when ``policy`` is None).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bench.experiments import shape_for_mb
from repro.core.api import Array, ArrayGroup, ArrayLayout
from repro.core.config import PandaConfig
from repro.core.runtime import PandaRuntime, RunResult
from repro.core.scheduler import SchedStats, SchedulerConfig, ShardedSchedStats
from repro.machine import NAS_SP2, MachineSpec
from repro.schema.distribution import BLOCK, NONE

__all__ = ["writer_group_app", "run_concurrent_writes"]


def writer_group_app(
    name: str,
    shape: Tuple[int, ...],
    group_size: int,
    priority: int = 1,
    stagger: float = 0.0,
    sub_chunk_bytes: Optional[int] = None,
) -> Callable:
    """One client group's SPMD app: optional startup computation (to
    fix REQUEST arrival order causally), then one collective write of a
    group-private array named ``name``."""
    mem = ArrayLayout(f"{name}-mem", (group_size,))
    dist = [BLOCK] + [NONE] * (len(shape) - 1)
    arr = Array(name, shape, np.float64, mem, dist,
                sub_chunk_bytes=sub_chunk_bytes)
    group = ArrayGroup(name)
    group.include(arr)

    def app(ctx):
        ctx.bind(arr)
        if stagger:
            yield from ctx.compute(stagger)
        yield from group.write(ctx, name, priority=priority)

    return app


def run_concurrent_writes(
    policy: Optional[str],
    n_apps: int,
    n_compute: int = 8,
    n_io: int = 4,
    size_mb: int = 16,
    priorities: Optional[Sequence[int]] = None,
    max_in_flight: Optional[int] = None,
    queue_limit: int = 16,
    stagger: float = 0.0,
    sub_chunk_bytes: Optional[int] = None,
    spec: MachineSpec = NAS_SP2,
    runtime_hook: Optional[Callable[[PandaRuntime], None]] = None,
    n_shards: int = 1,
) -> Tuple[RunResult, Optional[Union[SchedStats, ShardedSchedStats]]]:
    """Run ``n_apps`` concurrent collective writes (one per disjoint
    client group, each ``size_mb`` MB) over shared I/O nodes.

    ``policy`` of None runs the paper's unscheduled head-of-line loop
    as the baseline; otherwise the named scheduling policy with
    ``max_in_flight`` slots (default: enough for every app).  Returns
    the run result and the master's :class:`SchedStats` (None for the
    baseline).  ``stagger`` seconds of per-group startup computation
    (group *i* computes ``i * stagger``) make REQUEST arrival order
    causal rather than a dispatch-order coincidence.  ``runtime_hook``
    is called with the runtime before the run starts (the race detector
    uses it to instrument the simulator).  ``n_shards > 1`` partitions
    admission across that many shard masters (scheduled runs only).
    """
    if n_apps < 1 or n_compute % n_apps:
        raise ValueError(
            f"n_compute={n_compute} must be a multiple of n_apps={n_apps}"
        )
    group_size = n_compute // n_apps
    if priorities is None:
        priorities = [1] * n_apps
    if len(priorities) != n_apps:
        raise ValueError("need one priority per app")
    sched = None
    if policy is not None:
        sched = SchedulerConfig(
            policy=policy,
            max_in_flight=max_in_flight if max_in_flight else n_apps,
            queue_limit=queue_limit,
            n_shards=n_shards,
        )
    runtime = PandaRuntime(
        n_compute=n_compute, n_io=n_io, spec=spec,
        config=PandaConfig(scheduler=sched), real_payloads=False,
    )
    if runtime_hook is not None:
        runtime_hook(runtime)
    shape = shape_for_mb(size_mb)
    assignments = []
    for i in range(n_apps):
        ranks = tuple(range(i * group_size, (i + 1) * group_size))
        app = writer_group_app(
            f"app{i}", shape, group_size, priority=priorities[i],
            stagger=i * stagger, sub_chunk_bytes=sub_chunk_bytes,
        )
        assignments.append((app, ranks))
    result = runtime.run_partitioned(assignments)
    return result, runtime.sched_stats

"""Paper-style text rendering of benchmark results.

Each figure of the paper is a pair of bar charts -- aggregate MB/s and
normalised throughput, one group per I/O-node count, one bar per array
size.  We render the same data as two aligned tables, one row per array
size, one column per I/O-node count.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.bench.harness import PointResult

__all__ = ["format_figure", "format_rows"]


def format_rows(rows: Iterable[Sequence[str]], header: Sequence[str]) -> str:
    """Align a header + rows into a fixed-width table."""
    table = [list(header)] + [list(r) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_figure(figure: str, title: str,
                  grid: Dict[int, Dict[int, PointResult]]) -> str:
    """Render one figure's grid the way the paper reports it."""
    sizes = sorted(grid)
    ionodes = sorted(next(iter(grid.values())))
    header = ["array"] + [f"{n} ionodes" for n in ionodes]
    agg_rows = []
    norm_rows = []
    for mb in sizes:
        agg_rows.append(
            [f"{mb} MB"]
            + [f"{grid[mb][n].aggregate_mbps:.2f}" for n in ionodes]
        )
        norm_rows.append(
            [f"{mb} MB"]
            + [f"{grid[mb][n].normalized():.2f}" for n in ionodes]
        )
    out = [
        f"{figure}: {title}",
        "",
        "aggregate throughput (MB/s):",
        format_rows(agg_rows, header),
        "",
        "normalized throughput (per-ionode / peak):",
        format_rows(norm_rows, header),
    ]
    return "\n".join(out)

"""Run one experimental point and compute the paper's metrics.

Throughput definitions (paper, section 3):

- *elapsed time*: "the maximum time spent by any compute node on the
  collective i/o request" (we run one collective per measurement; the
  simulation is deterministic, so the paper's five-repetition averaging
  is unnecessary);
- *aggregate throughput*: array bytes / elapsed time;
- *normalised throughput*: (aggregate / #ionodes) / peak, where peak is
  the measured AIX read or write peak for real-disk runs and the 34 MB/s
  MPI bandwidth for infinitely-fast-disk runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.api import Array, ArrayLayout
from repro.core.config import PandaConfig
from repro.core.runtime import PandaRuntime
from repro.counters import COUNTERS
from repro.machine import MB, NAS_SP2, MachineSpec
from repro.schema.distribution import BLOCK, NONE
from repro.workloads.apps import read_array_app, write_array_app
from repro.workloads.arrays import mesh_for

__all__ = ["PointResult", "run_panda_point", "run_traced_point", "run_figure"]


@dataclass(frozen=True)
class PointResult:
    """One (figure, size, #ionodes) measurement."""

    kind: str
    n_compute: int
    n_io: int
    array_bytes: int
    disk_schema: str  # "natural" | "traditional"
    fast_disk: bool
    elapsed: float
    n_arrays: int = 1
    #: host-side perf-counter deltas for the timed run alone (events
    #: dispatched, cache hits, ...) -- snapshot/delta semantics, so
    #: back-to-back points in one process never accumulate into each
    #: other.  Excluded from equality: host observability, not a
    #: simulated result.
    counters: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def aggregate(self) -> float:
        """Aggregate throughput, bytes/second."""
        return self.array_bytes / self.elapsed

    @property
    def aggregate_mbps(self) -> float:
        return self.aggregate / MB

    def peak(self, spec: MachineSpec = NAS_SP2) -> float:
        """The paper's normalisation base for this point."""
        if self.fast_disk:
            return spec.network_bandwidth
        return spec.fs_read_peak if self.kind == "read" else spec.fs_write_peak

    def normalized(self, spec: MachineSpec = NAS_SP2) -> float:
        """Per-I/O-node throughput over the relevant peak."""
        return (self.aggregate / self.n_io) / self.peak(spec)


def build_array(
    shape: Tuple[int, ...],
    n_compute: int,
    n_io: int,
    disk_schema: str,
    dtype=np.float64,
    name: str = "a",
) -> Array:
    """The experiment's array declaration: BLOCK,BLOCK,BLOCK in memory
    over the paper's compute meshes; on disk either the same (natural
    chunking) or BLOCK,*,* over the I/O nodes (traditional order)."""
    mem = ArrayLayout("mem", mesh_for(n_compute))
    if disk_schema == "natural":
        return Array(name, shape, dtype, mem, [BLOCK] * len(shape))
    if disk_schema == "traditional":
        disk = ArrayLayout("disk", (n_io,))
        dists = [BLOCK] + [NONE] * (len(shape) - 1)
        return Array(name, shape, dtype, mem, [BLOCK] * len(shape),
                     disk, dists)
    raise ValueError(f"unknown disk schema {disk_schema!r}")


def run_panda_point(
    kind: str,
    n_compute: int,
    n_io: int,
    shape: Tuple[int, ...],
    disk_schema: str = "natural",
    fast_disk: bool = False,
    spec: MachineSpec = NAS_SP2,
    config: Optional[PandaConfig] = None,
    n_arrays: int = 1,
) -> PointResult:
    """Run one collective (virtual payloads) and return its metrics.
    ``n_arrays > 1`` writes/reads a group of identical arrays (the
    paper's multiple-arrays experiments)."""
    if kind not in ("read", "write"):
        raise ValueError(f"bad kind {kind!r}")
    machine = spec.evolve(fast_disk=fast_disk)
    arrays = [
        build_array(shape, n_compute, n_io, disk_schema, name=f"a{i}")
        for i in range(n_arrays)
    ]
    runtime = PandaRuntime(
        n_compute=n_compute, n_io=n_io, spec=machine,
        config=config or PandaConfig(), real_payloads=False,
    )
    # reads must read something: write the dataset first (not timed)
    runtime.run(write_array_app(arrays, "bench"))
    # counters are global and additive; delta against a snapshot taken
    # here so the point reports exactly its own timed run, regardless of
    # how many points ran before it in this process
    before = COUNTERS.snapshot()
    if kind == "write":
        # re-write: the timed op (the first write also counts, but this
        # keeps read and write points symmetric)
        result = runtime.run(write_array_app(arrays, "bench"))
    else:
        result = runtime.run(read_array_app(arrays, "bench"))
    after = COUNTERS.snapshot()
    op = result.ops[-1]
    return PointResult(
        kind=kind, n_compute=n_compute, n_io=n_io,
        array_bytes=op.total_bytes, disk_schema=disk_schema,
        fast_disk=fast_disk, elapsed=op.elapsed, n_arrays=n_arrays,
        counters={k: after[k] - before[k] for k in after},
    )


def run_traced_point(
    kind: str,
    n_compute: int,
    n_io: int,
    shape: Tuple[int, ...],
    disk_schema: str = "natural",
    fast_disk: bool = False,
    spec: MachineSpec = NAS_SP2,
    config: Optional[PandaConfig] = None,
    registry=None,
):
    """Run one collective like :func:`run_panda_point`, but traced and
    analyzed: returns ``(RunResult, CriticalPathReport)`` for the
    *timed* run (the read-priming write is traced too but excluded
    from the analysis window).  Pass a
    :class:`~repro.obs.metrics.MetricsRegistry` to also collect
    resource-occupancy series over both runs."""
    from repro.obs.critical_path import analyze
    from repro.obs.metrics import attach

    if kind not in ("read", "write"):
        raise ValueError(f"bad kind {kind!r}")
    machine = spec.evolve(fast_disk=fast_disk)
    arrays = [build_array(shape, n_compute, n_io, disk_schema)]
    runtime = PandaRuntime(
        n_compute=n_compute, n_io=n_io, spec=machine,
        config=config or PandaConfig(), real_payloads=False, trace=True,
    )
    if registry is not None:
        attach(runtime, registry)
    runtime.run(write_array_app(arrays, "bench"))
    if kind == "write":
        result = runtime.run(write_array_app(arrays, "bench"))
    else:
        result = runtime.run(read_array_app(arrays, "bench"))
    t_end = runtime.sim.now
    report = analyze(result.trace, t0=t_end - result.elapsed, t_end=t_end)
    return result, report


def run_figure(exp, spec: MachineSpec = NAS_SP2,
               config: Optional[PandaConfig] = None
               ) -> Dict[int, Dict[int, PointResult]]:
    """Run a whole figure's grid: {size_mb: {n_io: PointResult}}."""
    grid: Dict[int, Dict[int, PointResult]] = {}
    for size_mb in exp.sizes_mb:
        row: Dict[int, PointResult] = {}
        for n_io in exp.ionodes:
            row[n_io] = run_panda_point(
                exp.kind, exp.n_compute, n_io, exp.shape(size_mb),
                disk_schema=exp.disk_schema, fast_disk=exp.fast_disk,
                spec=spec, config=config,
            )
        grid[size_mb] = row
    return grid

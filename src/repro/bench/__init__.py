"""Benchmark harness: experiment definitions and runners for every
table and figure of the paper's evaluation (see DESIGN.md section 4 and
EXPERIMENTS.md for the index).

- :mod:`repro.bench.harness` -- run one (n_compute, n_io, size, schema,
  disk-mode) point of a figure and compute aggregate and normalised
  throughput exactly as the paper defines them.
- :mod:`repro.bench.experiments` -- the figure/table definitions:
  parameter grids, peaks to normalise against, expected bands.
- :mod:`repro.bench.report` -- paper-style text rendering of result
  grids (one row per array size, one column per I/O-node count).
"""

from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    experiment,
    shape_for_mb,
)
from repro.bench.harness import (
    PointResult,
    run_figure,
    run_panda_point,
    run_traced_point,
)
from repro.bench.report import format_figure, format_rows
from repro.bench.sched import run_concurrent_writes, writer_group_app

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "PointResult",
    "experiment",
    "format_figure",
    "format_rows",
    "run_concurrent_writes",
    "run_figure",
    "run_panda_point",
    "run_traced_point",
    "shape_for_mb",
    "writer_group_app",
]

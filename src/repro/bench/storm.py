"""Differential-replay storm comparison: one captured herd, every
policy.

The checkpoint-restart storm is captured **once**, under fifo, as a
:class:`repro.replay.WorkloadTrace`; every other policy then replays
the identical stimuli (same arrivals, same payloads, same faults --
none here) and only the schedule may move.  The comparison is therefore
apples-to-apples in a way independent per-policy runs are not: every
divergence in turnaround spread is attributable to admission order
alone, and the invariant *policy changes scheduling, never data* is
checked byte-for-byte against the capture's stored digest.

The ``slo`` point replays under a budget derived from the fifo capture
itself: the median of the per-tenant turnaround p99s.  The worse half
of the tenants is over budget and demoted, the better half is boosted
-- so the policy visibly reorders the herd -- while ``shed_factor`` is
set astronomically high so nothing is shed (a shed would change which
ops complete, breaking the data invariant).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.obs.slo import SLOBudget, quantile
from repro.replay.capture import TraceRecorder
from repro.replay.replayer import ReplayOutcome, replay
from repro.replay.trace import WorkloadTrace
from repro.workloads.storm import StormParams, run_storm

__all__ = ["CONTENDED_STORM", "derive_budget", "run_storm_comparison"]

#: the canonical contended herd: simultaneous arrivals (zero skew),
#: mixed checkpoint sizes so size-aware policies have something to
#: reorder, and an admission pipe narrow enough that the queue is deep
#: when the burst lands.
CONTENDED_STORM = StormParams(
    n_tenants=8, n_io=2, policy="fifo", rounds=4, deadline=0.5,
    burst_skew=0.0, elements=4096, size_classes=(1, 2, 8),
    max_in_flight=2, seed=3,
)

#: the full-scale point doubles the rounds and quadruples the payload
#: (the per-tenant history is what the slo policy's demotions feed on;
#: adding tenants instead re-aligns the demoted set with arrival order
#: and the reordering washes out).
FULL_STORM = replace(CONTENDED_STORM, rounds=8, elements=16384)


def _tenant_p99s(stats: Any) -> List[float]:
    """Per-tenant turnaround p99 of one replayed run's admission
    schedule (tenant = the ``ckptN`` dataset prefix)."""
    per: Dict[int, List[float]] = {}
    for r in stats.ops:
        if r.turnaround is None:
            continue
        tenant = int(r.dataset.split(".")[0][4:])
        per.setdefault(tenant, []).append(r.turnaround)
    return [quantile(sorted(ts), 0.99) for _, ts in sorted(per.items())]


def derive_budget(base: ReplayOutcome) -> SLOBudget:
    """A demote-half-the-herd budget from the fifo capture: median of
    the per-tenant p99s, with shedding effectively disabled."""
    p99s = sorted(_tenant_p99s(base.run_stats[0]))
    return SLOBudget(turnaround_p99=quantile(p99s, 0.5), window=16,
                     min_history=2, shed_factor=1e9)


def _point(outcome: ReplayOutcome, stored_want: str) -> Dict[str, Any]:
    stats = outcome.run_stats[0]
    turnarounds = sorted(r.turnaround for r in stats.completed_ops())
    rt = outcome.runtime
    return {
        "turnaround_mean": stats.mean_turnaround(),
        "turnaround_spread": stats.turnaround_spread(),
        "turnaround_p99": quantile(turnarounds, 0.99),
        "makespan": outcome.results[0].elapsed,
        "ops_completed": len(turnarounds),
        "demoted": sum(t.total_demoted for t in rt.slo_trackers.values()),
        "shed": sum(t.total_shed for t in rt.slo_trackers.values()),
        "stored_equal": outcome.stored == stored_want,
    }


def run_storm_comparison(
        params: Optional[StormParams] = None) -> Dict[str, Any]:
    """Capture the herd under fifo, replay under every policy; return
    per-policy points plus the capture/replay invariants."""
    params = params or CONTENDED_STORM
    holder: Dict[str, TraceRecorder] = {}

    def hook(rt: Any) -> None:
        holder["rec"] = TraceRecorder(rt, name="bench-storm")

    run_storm(params, runtime_hook=hook)
    trace = WorkloadTrace.loads(holder["rec"].trace().dumps())
    stored_want = trace.expect["stored"]

    base = replay(trace)
    budget = derive_budget(base)
    policies: Dict[str, Dict[str, Any]] = {
        "fifo": _point(base, stored_want)}
    for policy in ("sjf", "fair", "slo"):
        slo = budget if policy == "slo" else None
        alt = replay(trace, policy_override=policy, slo_override=slo)
        policies[policy] = _point(alt, stored_want)
    return {
        "params": {
            "n_tenants": params.n_tenants, "n_io": params.n_io,
            "rounds": params.rounds, "elements": params.elements,
            "size_classes": list(params.size_classes),
            "max_in_flight": params.max_in_flight, "seed": params.seed,
        },
        "budget_p99": budget.turnaround_p99,
        "replay_bit_exact": bool(base.ok),
        "n_events": trace.n_events,
        "policies": policies,
    }

"""Soak + failover drills: hours of sustained multi-tenant load with
periodic node and shard-master crashes, checked against operational
SLOs.

One runtime is driven through many *cycles* on the same simulated
machine -- file systems, the dataset catalog and the relocation table
all persist, and each ``run_partitioned`` entry repairs crashed nodes
(the reboot).  A cycle is:

1. **verify** -- every tenant reads its dataset back and the harness
   compares the bytes against what the *previous* cycle wrote (byte
   exactness survives the crash + recovery + reboot sequence);
2. **write storm** -- every tenant rewrites its dataset with a
   cycle-mutated pattern, arrivals staggered so the admission queues
   are deep when the cycle's crash lands mid-storm;
3. **pad** -- every tenant idles to the cycle boundary, so a drill of
   ``cycles * cycle_span`` simulated seconds is exact by construction.

Cycle 0 is the crash-free baseline (its admission waits anchor the
regression SLO) and the final cycle is a crash-free verification pass
(so the last crash cycle's writes are also read back); every cycle in
between kills one server mid-storm, alternating between shard masters
(index 1..n_shards-1 -- shard 0 stays the reliable root, as in the
paper) and data nodes.  Crash-cycle writes recover through the PR 2/7
machinery: relocation for lost data-plane portions, owner failover for
a dead shard master's queue.

The drill's SLOs, asserted by ``benchmarks/bench_soak.py``:

- **integrity** -- zero byte mismatches over every (tenant, cycle)
  read-back;
- **recovery time** -- the last write of a crash cycle completes within
  ``RECOVERY_BUDGET`` of the crash;
- **admission-wait regression** -- the final (post-drill) cycle's mean
  write admission wait is within 2x the crash-free baseline;
- **latency SLO enforcement** -- on a separate contended workload
  (:func:`run_slo_comparison`), the ``slo`` policy keeps under-budget
  tenants' p99 turnaround within budget while ``fifo`` violates it.

Everything is a pure function of the parameters: no wall clock, no
unseeded randomness.  ``bench_soak.py --check`` exact-matches the
committed numbers, and tests rerun a small drill twice asserting
identical output.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import Array, ArrayGroup, ArrayLayout
from repro.core.config import PandaConfig
from repro.core.protocol import OpRejected
from repro.core.runtime import PandaRuntime
from repro.core.scheduler import SchedulerConfig
from repro.faults import FaultSpec
from repro.machine import sp2
from repro.obs.slo import SLOBudget, quantile
from repro.schema.distribution import BLOCK, NONE
from repro.bench.scale import (
    DATASET_SHAPE,
    N_DISK_CHUNKS,
    SCALE_SPEC_OVERRIDES,
)

__all__ = [
    "RECOVERY_BUDGET",
    "WRITE_PHASE",
    "crash_at",
    "crash_plan",
    "run_slo_comparison",
    "run_soak_drill",
    "tenant_pattern",
]

#: absolute offset (seconds into each cycle) of the write storm; the
#: verify phase before it needs time to drain at high tenant counts.
WRITE_PHASE = 30.0
#: recovery-time SLO: the last write of a crash cycle must complete
#: within this many seconds of the crash (detection + re-route +
#: relocation, all bounded by the clamped backoff).
RECOVERY_BUDGET = 120.0
#: read-back poison: the verify phase must overwrite every element.
_POISON = -1.0


def crash_at(n_tenants: int, stagger: float) -> float:
    """The crash instant, seconds into a crash cycle: halfway through
    the write storm's arrival ramp, when the admission queues are deep
    and ops are in flight on every node (each dataset stripes over all
    of them), whatever the tenant count."""
    return WRITE_PHASE + max(0.01, 0.5 * n_tenants * stagger)


def tenant_pattern(tenant: int, cycle: int) -> np.ndarray:
    """The bytes tenant ``tenant`` writes in cycle ``cycle``: unique per
    (tenant, cycle) so a stale or misrouted read-back cannot pass."""
    base = float(tenant * 100003 + cycle * 1009)
    return base + np.arange(DATASET_SHAPE[0], dtype=np.float64)


def _tenant_array() -> Tuple[ArrayGroup, Array]:
    """One shared schema for every tenant (one plan-cache entry), the
    scale sweep's 8 KB dataset in eight 1 KB disk chunks."""
    mem = ArrayLayout("soak-mem", (1,))
    disk = ArrayLayout("soak-disk", (N_DISK_CHUNKS,))
    arr = Array("soak", DATASET_SHAPE, np.float64, mem, [BLOCK],
                disk, [BLOCK])
    group = ArrayGroup("soak")
    group.include(arr)
    return group, arr


def crash_plan(
    n_io: int, n_shards: int, cycles: int
) -> Dict[int, int]:
    """cycle index -> server index to kill.  Cycle 0 (baseline) and the
    final cycle (verification) stay crash-free; crash cycles alternate
    between data nodes and shard masters (never index 0, the reliable
    root), round-robin within each class."""
    masters = list(range(1, n_shards))
    data_nodes = list(range(n_shards, n_io))
    if not data_nodes:
        raise ValueError(
            f"no data nodes to crash: n_io={n_io} <= n_shards={n_shards}"
        )
    plan: Dict[int, int] = {}
    mi = di = 0
    for k, cycle in enumerate(range(1, cycles - 1)):
        if masters and k % 2 == 1:
            plan[cycle] = masters[mi % len(masters)]
            mi += 1
        else:
            plan[cycle] = data_nodes[di % len(data_nodes)]
            di += 1
    return plan


def _cycle_app(
    i: int,
    cycle: int,
    group: ArrayGroup,
    arr: Array,
    stagger: float,
    cycle_span: float,
    verify_tail: bool,
    readback: Dict[int, np.ndarray],
    tail_readback: Dict[int, np.ndarray],
) -> Callable:
    """Tenant ``i``'s script for one cycle: verify the previous cycle's
    bytes, rewrite, idle to the cycle boundary.  ``verify_tail`` (clean
    cycles only -- a crash cycle may leave pre-crash data on the dead
    node, unreachable until the reboot) adds a same-cycle read-back of
    this cycle's own write."""

    def app(ctx):
        start = ctx.runtime.sim.now

        def pad_until(target: float):
            dt = start + target - ctx.runtime.sim.now
            if dt > 0:
                yield from ctx.compute(dt)

        data = tenant_pattern(i, cycle)
        buf = ctx.bind(arr, data.copy())
        if cycle > 0:
            yield from pad_until(i * stagger)
            buf[:] = _POISON
            yield from group.read(ctx, f"d{i}")
            readback[i] = buf.copy()
            buf[:] = data
        yield from pad_until(WRITE_PHASE + i * stagger)
        yield from group.write(ctx, f"d{i}")
        if verify_tail:
            yield from pad_until(cycle_span - WRITE_PHASE + i * stagger)
            buf[:] = _POISON
            yield from group.read(ctx, f"d{i}")
            tail_readback[i] = buf.copy()
        yield from pad_until(cycle_span)

    return app


def _mean(xs: List[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def run_soak_drill(
    n_tenants: int = 48,
    n_io: int = 8,
    n_shards: int = 4,
    cycles: int = 6,
    cycle_span: float = 300.0,
    policy: str = "slo",
    budget: Optional[SLOBudget] = None,
    stagger: float = 1e-3,
    max_in_flight: int = 8,
    seed: int = 11,
) -> Dict[str, object]:
    """Run the drill and return its metrics (every float rounded, so
    the dict is JSON-stable and reruns compare exactly equal).

    ``budget`` defaults to a generous 60 s p99 turnaround: the drill
    exercises the SLO *tracking* plane under faults without shedding
    load (enforcement is measured by :func:`run_slo_comparison`, where
    the contention is engineered).
    """
    if cycles < 3:
        raise ValueError("a drill needs >= 3 cycles: baseline, crash, verify")
    group, arr = _tenant_array()
    plan = crash_plan(n_io, n_shards, cycles)
    if budget is None and policy == "slo":
        budget = SLOBudget(turnaround_p99=60.0)

    sched = SchedulerConfig(
        policy=policy,
        max_in_flight=max_in_flight,
        queue_limit=2 * n_tenants + 2,
        n_shards=n_shards,
        slo=budget if policy == "slo" else None,
    )
    rt = PandaRuntime(
        n_compute=n_tenants, n_io=n_io,
        spec=sp2(total_nodes=n_tenants + n_io, **SCALE_SPEC_OVERRIDES),
        config=PandaConfig(scheduler=sched, faults=FaultSpec(seed=seed)),
        real_payloads=True,
    )

    drill_t0 = rt.sim.now
    cycle_rows: List[Dict[str, object]] = []
    integrity_checks = integrity_failures = 0
    total_ops = total_demoted = total_shed = 0
    recovery_max = 0.0
    wait_means: Dict[int, float] = {}
    pre_waits: List[float] = []
    post_waits: List[float] = []

    t_crash = crash_at(n_tenants, stagger)
    for c in range(cycles):
        victim = plan.get(c)
        rt.reschedule_crashes(
            [(victim, t_crash)] if victim is not None else []
        )
        verify_tail = victim is None
        readback: Dict[int, np.ndarray] = {}
        tail_readback: Dict[int, np.ndarray] = {}
        assignments = [
            (
                _cycle_app(i, c, group, arr, stagger, cycle_span,
                           verify_tail, readback, tail_readback),
                (i,),
            )
            for i in range(n_tenants)
        ]
        t0 = rt.sim.now
        result = rt.run_partitioned(assignments)
        stats = rt.sched_stats
        assert stats is not None

        # -- integrity: previous cycle's bytes, then (clean cycles)
        # this cycle's own write
        expected_pairs = []
        if c > 0:
            expected_pairs.append((readback, c - 1))
        if verify_tail:
            expected_pairs.append((tail_readback, c))
        for got, want_cycle in expected_pairs:
            for i in range(n_tenants):
                integrity_checks += 1
                if i not in got or not np.array_equal(
                    got[i], tenant_pattern(i, want_cycle)
                ):
                    integrity_failures += 1

        # -- admission waits (writes only: the phase every cycle runs
        # identically), split around the crash instant
        done = stats.completed_ops()
        writes = [r for r in done if r.kind == "write"]
        total_ops += len(done)
        wait_means[c] = _mean([r.queue_wait for r in writes])
        rec_time = 0.0
        if victim is not None:
            crash_abs = t0 + t_crash
            pre_waits += [r.queue_wait for r in writes
                          if r.arrived < crash_abs]
            post_waits += [r.queue_wait for r in writes
                           if r.arrived >= crash_abs]
            rec_time = max(0.0,
                           max(r.completed for r in writes) - crash_abs)
            recovery_max = max(recovery_max, rec_time)
        demoted = sum(t.total_demoted for t in rt.slo_trackers.values())
        shed = sum(t.total_shed for t in rt.slo_trackers.values())
        total_demoted += demoted
        total_shed += shed

        cycle_rows.append({
            "cycle": c,
            "crashed": victim if victim is not None else -1,
            "ops": len(done),
            "write_wait_mean": round(wait_means[c], 6),
            "recovery_time": round(rec_time, 6),
            "server_crashes": result.counters["server_crashes"],
            "recoveries": result.counters["recoveries"],
            "demoted": demoted,
            "shed": shed,
        })

    baseline = wait_means[0]
    final = wait_means[cycles - 1]
    return {
        "config": {
            "tenants": n_tenants,
            "n_io": n_io,
            "n_shards": n_shards,
            "cycles": cycles,
            "cycle_span": cycle_span,
            "policy": policy,
            "seed": seed,
        },
        "cycles_detail": cycle_rows,
        "summary": {
            "sim_hours": round((rt.sim.now - drill_t0) / 3600.0, 6),
            "crashes": len(plan),
            "ops": total_ops,
            "integrity_checks": integrity_checks,
            "integrity_failures": integrity_failures,
            "wait_mean_baseline": round(baseline, 6),
            "wait_mean_final": round(final, 6),
            "wait_regression": round(final / baseline, 3) if baseline else 0.0,
            "wait_mean_pre_crash": round(_mean(pre_waits), 6),
            "wait_mean_post_crash": round(_mean(post_waits), 6),
            "recovery_max": round(recovery_max, 6),
            "demoted": total_demoted,
            "shed": total_shed,
        },
    }


# -- SLO enforcement: slo vs fifo on one contended workload ---------------

#: heavy tenants' dataset: 256 x 1024 float64 = 2 MB, striped over the
#: I/O nodes; at the SP2's 3 MB/s disks one write takes long enough to
#: blow a sub-second turnaround budget.
HEAVY_SHAPE = (256, 1024)


def _comparison_arrays(n_io: int):
    # one disk chunk, not the scale sweep's eight: on the comparison's
    # *slow* disks each chunk pays the per-request overhead, and a small
    # op must stay cheap (~60 ms) for "under budget" to be its natural
    # state rather than a tuning accident
    smem = ArrayLayout("cmp-small-mem", (1,))
    sdisk = ArrayLayout("cmp-small-disk", (1,))
    small = Array("cmp-small", DATASET_SHAPE, np.float64, smem, [BLOCK],
                  sdisk, [BLOCK])
    sgroup = ArrayGroup("cmp-small")
    sgroup.include(small)
    hmem = ArrayLayout("cmp-heavy-mem", (1,))
    hdisk = ArrayLayout("cmp-heavy-disk", (n_io,))
    heavy = Array("cmp-heavy", HEAVY_SHAPE, np.float64, hmem, [BLOCK, NONE],
                  hdisk, [BLOCK, NONE])
    hgroup = ArrayGroup("cmp-heavy")
    hgroup.include(heavy)
    return sgroup, small, hgroup, heavy


def run_slo_comparison(
    n_small: int = 6,
    n_heavy: int = 8,
    small_ops: int = 6,
    heavy_ops: int = 8,
    n_io: int = 4,
    max_in_flight: int = 2,
    budget_s: float = 1.2,
    small_start: float = 9.0,
    small_gap: float = 2.0,
) -> Dict[str, object]:
    """The enforcement experiment: one workload, two policies.

    ``n_heavy`` tenants stream 2 MB writes back-to-back from t=0 --
    enough offered load to keep every execution slot and most of the
    admission queue busy.  ``n_small`` tenants arrive at
    ``small_start`` (by which time each heavy tenant has completed
    ``min_history`` ops and, under ``slo``, stands demoted) and issue
    8 KB writes at a gentle cadence.  Under ``fifo`` the small ops
    queue behind the heavy backlog in arrival order and their p99
    turnaround blows the budget; under ``slo`` the demoted heavy
    arrivals sort behind them and the healthy-tenant DRR boost drains
    them first, so the small tenants -- the under-budget ones -- hold
    their budget.  Heavy ops pushed past the shed threshold are
    rejected client-visibly; the heavy script catches
    :class:`OpRejected`, backs off and retries, which is exactly the
    operational contract DESIGN.md section 15 documents.
    """
    sgroup, small, hgroup, heavy = _comparison_arrays(n_io)
    budget = SLOBudget(turnaround_p99=budget_s)
    n_ranks = n_heavy + n_small

    def heavy_app(i: int) -> Callable:
        def app(ctx):
            ctx.bind(heavy)
            yield from ctx.compute(i * 1e-3)
            for _ in range(heavy_ops):
                try:
                    yield from hgroup.write(ctx, f"h{i}")
                except OpRejected:
                    yield from ctx.compute(0.4)
        return app

    def small_app(j: int) -> Callable:
        def app(ctx):
            ctx.bind(small)
            yield from ctx.compute(small_start + j * 1e-2)
            for _ in range(small_ops):
                yield from sgroup.write(ctx, f"s{j}")
                yield from ctx.compute(small_gap)
        return app

    def run(policy: str):
        sched = SchedulerConfig(
            policy=policy,
            max_in_flight=max_in_flight,
            queue_limit=n_ranks + 2,
            slo=budget if policy == "slo" else None,
        )
        rt = PandaRuntime(
            n_compute=n_ranks, n_io=n_io,
            spec=sp2(total_nodes=n_ranks + n_io,
                     plan_formation_overhead=2e-4),
            config=PandaConfig(scheduler=sched), real_payloads=False,
        )
        assignments = [(heavy_app(i), (i,)) for i in range(n_heavy)]
        assignments += [(small_app(j), (n_heavy + j,))
                        for j in range(n_small)]
        rt.run_partitioned(assignments)
        stats = rt.sched_stats
        assert stats is not None
        done = stats.completed_ops()
        small_t = sorted(r.turnaround for r in done
                         if r.dataset.startswith("s"))
        heavy_t = sorted(r.turnaround for r in done
                         if r.dataset.startswith("h"))
        trackers = rt.slo_trackers.values()
        return {
            "small_ops": len(small_t),
            "small_p99": round(quantile(small_t, 0.99), 6),
            "small_max": round(small_t[-1], 6) if small_t else 0.0,
            "heavy_ops": len(heavy_t),
            "heavy_p99": round(quantile(heavy_t, 0.99), 6),
            "demoted": sum(t.total_demoted for t in trackers),
            "shed": sum(t.total_shed for t in trackers),
        }

    return {
        "budget": budget_s,
        "slo": run("slo"),
        "fifo": run("fifo"),
    }

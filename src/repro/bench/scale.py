"""Many-tenant admission-plane workloads for the scale-out sweep.

One runner shared by ``benchmarks/bench_scale.py`` and the scale tests:
``n_ops`` single-rank tenants, each collectively writing one private
8 KB dataset, arrive at a fixed rate against ``n_io`` shared I/O nodes
whose admission plane is partitioned over ``n_shards`` shard masters.

The workload is deliberately the *opposite* of the paper-scale
benchmarks: the data plane is tiny (8 KB per op, eight 1 KB chunks on
servers 0..7, infinitely fast disks) so that nearly all of each op's
latency is admission -- REQUEST handling, queueing at the owning shard
master, the SCHED broadcast and the completion round-trip.  What the
sweep then measures is how that admission overhead scales with total
queue depth and with shard count, which is exactly the question the
dataset-partitioned masters exist to answer.

Constants are the NAS SP2 interconnect with two "modern deployment"
overrides, documented on :data:`SCALE_SPEC_OVERRIDES`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.api import Array, ArrayGroup, ArrayLayout
from repro.core.config import PandaConfig
from repro.core.runtime import PandaRuntime, RunResult
from repro.core.scheduler import SchedStats, SchedulerConfig, ShardedSchedStats
from repro.machine import MachineSpec, sp2
from repro.schema.distribution import BLOCK

__all__ = [
    "DATASET_SHAPE",
    "N_DISK_CHUNKS",
    "SCALE_SPEC_OVERRIDES",
    "run_many_tenants",
    "scale_metrics",
    "scale_spec",
]

#: one tenant's dataset: 1024 float64 = 8 KB.
DATASET_SHAPE = (1024,)
#: disk chunks per dataset: eight 1 KB chunks, living on servers 0..7
#: (chunk *i* -> server ``i % n_io``), so the data plane stays constant
#: while ``n_io`` and ``n_shards`` scale.
N_DISK_CHUNKS = 8

#: departures from the 1995 Table-1 constants, so the sweep probes the
#: admission plane rather than a 3 MB/s disk of thirty years ago:
#:
#: - ``fast_disk`` -- data-transfer time is zero (the paper's own
#:   infinitely-fast-disk methodology); protocol + network costs remain.
#: - ``plan_formation_overhead=2e-4`` -- 0.2 ms per plan instead of the
#:   SP2's 11 ms; at 11 ms a single master saturates at ~90 ops/s and
#:   every configuration is plan-formation-bound, which hides the
#:   queueing behaviour under test.
SCALE_SPEC_OVERRIDES: Dict[str, object] = {
    "fast_disk": True,
    "plan_formation_overhead": 2e-4,
}


def scale_spec(n_ops: int, n_io: int) -> MachineSpec:
    """The sweep's machine: SP2 interconnect, modern-deployment
    overrides, and enough nodes for one rank per tenant."""
    return sp2(total_nodes=n_ops + n_io, **SCALE_SPEC_OVERRIDES)


def _tenant_array() -> Tuple[ArrayGroup, Array]:
    mem = ArrayLayout("tenant-mem", (1,))
    disk = ArrayLayout("tenant-disk", (N_DISK_CHUNKS,))
    arr = Array("tenant", DATASET_SHAPE, np.float64, mem, [BLOCK],
                disk, [BLOCK])
    group = ArrayGroup("tenant")
    group.include(arr)
    return group, arr


def run_many_tenants(
    n_ops: int,
    n_io: int,
    n_shards: int,
    policy: str = "fair",
    stagger: float = 1e-3,
    max_in_flight: int = 8,
    runtime_hook: Optional[Callable[[PandaRuntime], None]] = None,
) -> Tuple[RunResult, Union[SchedStats, ShardedSchedStats]]:
    """Run ``n_ops`` tenants (one rank, one private 8 KB write each)
    against ``n_io`` I/O nodes under ``n_shards`` shard masters.

    Tenant *i* computes ``i * stagger`` seconds before its REQUEST, so
    ops arrive causally at ``1/stagger`` per second -- the same trick
    the scheduler bench uses, here doubling as the offered-load dial.
    All tenants share one array schema (one plan-cache entry) and each
    writes its own dataset ``d0 .. dN``, spread over the shard masters
    by the consistent-hash map.  ``max_in_flight`` is per shard master;
    the queue limit is sized to hold every tenant so no REQUEST is ever
    rejected and admission latency is measured, not load-shed.
    """
    group, arr = _tenant_array()

    def tenant_app(i: int) -> Callable:
        def app(ctx):
            ctx.bind(arr)
            if stagger:
                yield from ctx.compute(i * stagger)
            yield from group.write(ctx, f"d{i}")
        return app

    sched = SchedulerConfig(
        policy=policy,
        max_in_flight=max_in_flight,
        queue_limit=n_ops + 1,
        n_shards=n_shards,
    )
    runtime = PandaRuntime(
        n_compute=n_ops, n_io=n_io, spec=scale_spec(n_ops, n_io),
        config=PandaConfig(scheduler=sched), real_payloads=False,
    )
    if runtime_hook is not None:
        runtime_hook(runtime)
    assignments = [(tenant_app(i), (i,)) for i in range(n_ops)]
    result = runtime.run_partitioned(assignments)
    stats = runtime.sched_stats
    assert stats is not None
    return result, stats


def scale_metrics(
    stats: Union[SchedStats, ShardedSchedStats],
) -> Dict[str, float]:
    """The sweep's figures of merit, from the scheduler records.

    - ``makespan`` -- first arrival to last completion, seconds;
    - ``admission_mean`` / ``admission_p99`` -- queue wait (arrival at
      the owning master -> SCHED broadcast) per op: the *admission
      overhead per op* the acceptance criterion bounds;
    - ``turnaround_spread`` -- max - min turnaround: the cross-shard
      fairness figure of merit;
    - ``queue_peak`` -- deepest any one master's queue got.
    """
    done = stats.completed_ops()
    if not done:
        raise ValueError("no completed ops to summarize")
    waits = sorted(r.queue_wait for r in done)
    p99_idx = max(0, -(-99 * len(waits) // 100) - 1)
    makespan = (max(r.completed for r in done)
                - min(r.arrived for r in done))
    return {
        "ops": len(done),
        "makespan": round(makespan, 6),
        "admission_mean": round(sum(waits) / len(waits), 6),
        "admission_p99": round(waits[p99_idx], 6),
        "turnaround_spread": round(stats.turnaround_spread(), 6),
        "queue_peak": stats.queue_peak,
    }

"""Post-run utilization and traffic statistics.

The paper reasons about Panda's performance in terms of which resource
saturates -- the per-I/O-node disk, the per-node network links, or
neither (startup-bound).  :func:`utilization` extracts exactly that
accounting from a finished :class:`~repro.core.runtime.PandaRuntime`,
so examples and tests can *show* the bottleneck rather than argue it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["RunStats", "utilization"]


@dataclass(frozen=True)
class RunStats:
    """Resource accounting for one runtime over its whole history."""

    sim_time: float
    #: per-server disk busy seconds and derived utilization
    disk_busy: Tuple[float, ...]
    #: bytes written / read per server's disk
    disk_written: Tuple[int, ...]
    disk_read: Tuple[int, ...]
    #: total messages and payload bytes that crossed the network
    messages: int
    network_bytes: int
    #: sequential fraction of all disk requests, per server
    sequential_fraction: Tuple[float, ...]

    @property
    def disk_utilization(self) -> Tuple[float, ...]:
        if self.sim_time <= 0:
            return tuple(0.0 for _ in self.disk_busy)
        return tuple(b / self.sim_time for b in self.disk_busy)

    @property
    def total_disk_bytes(self) -> int:
        return sum(self.disk_written) + sum(self.disk_read)

    def summary(self) -> str:
        util = ", ".join(f"{u:.0%}" for u in self.disk_utilization)
        seq = ", ".join(f"{s:.0%}" for s in self.sequential_fraction)
        return (
            f"sim time {self.sim_time:.3f} s; disk util [{util}]; "
            f"sequential [{seq}]; {self.messages} messages, "
            f"{self.network_bytes} network bytes"
        )


def utilization(runtime) -> RunStats:
    """Collect :class:`RunStats` from a Panda (or baseline) runtime."""
    disks = []
    if hasattr(runtime, "filesystems"):
        disks = [fs.disk for fs in runtime.filesystems]
    elif hasattr(runtime, "servers"):  # BaselineRuntime
        disks = [s.fs.disk for s in runtime.servers]
    seq = tuple(
        (d.sequential_requests / d.requests) if d.requests else 0.0
        for d in disks
    )
    return RunStats(
        sim_time=runtime.sim.now,
        disk_busy=tuple(d.busy_seconds for d in disks),
        disk_written=tuple(d.bytes_written for d in disks),
        disk_read=tuple(d.bytes_read for d in disks),
        messages=runtime.network.messages_sent,
        network_bytes=runtime.network.bytes_sent,
        sequential_fraction=seq,
    )

"""MPI-style collectives over the point-to-point substrate.

Panda itself deliberately avoids collectives -- its whole control flow
is the master handshake plus server-directed point-to-point traffic --
but the *applications* of 1995 (and the two-phase baseline) used them,
so the substrate provides the classic set: barrier, broadcast, scatter,
gather, all-gather, all-to-all.  All are implemented the way MPI-F on
the SP2 did small-cluster collectives: linear fan-in/fan-out through a
root, which is also what keeps the simulated costs honest for the node
counts the paper uses (<= 64).

Every operation is SPMD: each rank of ``ranks`` calls the same function
with the same argument list, and yields from it.  The root is
``ranks[0]`` unless given.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.mpi.comm import Communicator

__all__ = [
    "alltoall",
    "allgather",
    "barrier",
    "bcast",
    "gather",
    "scatter",
]

# tag block reserved for collective plumbing
_TAG_BARRIER_IN = 60
_TAG_BARRIER_OUT = 61
_TAG_BCAST = 62
_TAG_SCATTER = 63
_TAG_GATHER = 64
_TAG_ALLGATHER = 65
_TAG_ALLTOALL = 66


def _root_of(ranks: Sequence[int], root: Optional[int]) -> int:
    if root is None:
        return ranks[0]
    if root not in ranks:
        raise ValueError(f"root {root} not in ranks {tuple(ranks)}")
    return root


def barrier(comm: Communicator, ranks: Sequence[int], root: Optional[int] = None):
    """Linear barrier: everyone reports to the root, the root releases
    everyone."""
    root = _root_of(ranks, root)
    if comm.rank == root:
        yield from comm.gather_recv(ranks, _TAG_BARRIER_IN)
        yield from comm.bcast_send(ranks, _TAG_BARRIER_OUT)
    else:
        yield from comm.send(root, _TAG_BARRIER_IN)
        yield from comm.recv(src=root, tag=_TAG_BARRIER_OUT)


def bcast(comm: Communicator, ranks: Sequence[int], value: Any = None,
          nbytes: Optional[int] = None, root: Optional[int] = None):
    """Broadcast ``value`` from the root; returns it on every rank."""
    root = _root_of(ranks, root)
    if comm.rank == root:
        yield from comm.bcast_send(ranks, _TAG_BCAST, value, nbytes)
        return value
    msg = yield from comm.recv(src=root, tag=_TAG_BCAST)
    return msg.payload


def scatter(comm: Communicator, ranks: Sequence[int],
            values: Optional[Sequence[Any]] = None,
            nbytes: Optional[int] = None, root: Optional[int] = None):
    """Root distributes ``values[i]`` to ``ranks[i]``; each rank
    returns its element."""
    root = _root_of(ranks, root)
    if comm.rank == root:
        if values is None or len(values) != len(ranks):
            raise ValueError("root must pass one value per rank")
        mine = None
        for r, v in zip(ranks, values):
            if r == comm.rank:
                mine = v
                continue
            yield from comm.send(r, _TAG_SCATTER, v, nbytes)
        return mine
    msg = yield from comm.recv(src=root, tag=_TAG_SCATTER)
    return msg.payload


def gather(comm: Communicator, ranks: Sequence[int], value: Any = None,
           nbytes: Optional[int] = None, root: Optional[int] = None):
    """Everyone contributes ``value``; the root returns the list in
    rank order, others return None."""
    root = _root_of(ranks, root)
    if comm.rank == root:
        msgs = yield from comm.gather_recv(ranks, _TAG_GATHER)
        out = []
        for r in ranks:
            out.append(value if r == comm.rank else msgs[r].payload)
        return out
    yield from comm.send(root, _TAG_GATHER, value, nbytes)
    return None


def allgather(comm: Communicator, ranks: Sequence[int], value: Any = None,
              nbytes: Optional[int] = None):
    """Gather to ranks[0], then broadcast: every rank returns the full
    rank-ordered list."""
    root = ranks[0]
    gathered = yield from gather(comm, ranks, value, nbytes, root=root)
    if comm.rank == root:
        yield from comm.bcast_send(ranks, _TAG_ALLGATHER, gathered, nbytes)
        return gathered
    msg = yield from comm.recv(src=root, tag=_TAG_ALLGATHER)
    return msg.payload


def alltoall(comm: Communicator, ranks: Sequence[int],
             values: Optional[Dict[int, Any]] = None,
             nbytes_per: Optional[int] = None):
    """Personalised exchange: ``values[r]`` goes to rank ``r``; returns
    {src: value} including this rank's own entry.

    Schedule: each rank sends to the rank ``k`` positions ahead for
    ``k = 1 .. n-1`` (spreading load across destinations), then drains
    its ``n-1`` incoming messages.  Sends complete at link release and
    deliveries are buffered in mailboxes, so no recv ordering can
    deadlock -- which is also how eager-protocol MPI behaved for these
    message sizes.
    """
    values = values or {}
    n = len(ranks)
    pos = {r: i for i, r in enumerate(ranks)}
    if comm.rank not in pos:
        raise ValueError(f"rank {comm.rank} not in the collective")
    me = pos[comm.rank]
    out: Dict[int, Any] = {}
    if comm.rank in values:
        out[comm.rank] = values[comm.rank]
    for k in range(1, n):
        dst = ranks[(me + k) % n]
        yield from comm.send(dst, _TAG_ALLTOALL, values.get(dst), nbytes_per)
    for k in range(1, n):
        src = ranks[(me - k) % n]
        msg = yield from comm.recv(src=src, tag=_TAG_ALLTOALL)
        out[src] = msg.payload
    return out

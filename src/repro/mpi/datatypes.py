"""Data payloads that may be real (NumPy-backed) or virtual (size-only).

The whole reproduction runs in one of two payload modes:

- **real** -- payloads carry actual bytes end-to-end, so tests can
  assert bit-exact round trips through the full protocol;
- **virtual** -- payloads carry only a byte count, so the 16-512 MB
  sweeps of the paper's figures run in milliseconds of wall time.  All
  geometry, message counts and simulated costs are identical.

:class:`DataBlock` is that union.  Code paths never branch on the mode
except at the final "touch the bytes" step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.counters import COUNTERS

__all__ = ["DataBlock"]


@dataclass(frozen=True)
class DataBlock:
    """A block of array data: always a byte count, optionally the bytes.

    Real blocks hold a C-contiguous ndarray; ``nbytes`` always equals
    ``array.nbytes`` then.  Virtual blocks hold ``array=None``.
    """

    nbytes: int
    array: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.array is not None:
            arr = np.ascontiguousarray(self.array)
            object.__setattr__(self, "array", arr)
            if arr.nbytes != self.nbytes:
                raise ValueError(
                    f"nbytes={self.nbytes} but array has {arr.nbytes} bytes"
                )

    @classmethod
    def real(cls, array: np.ndarray) -> "DataBlock":
        array = np.ascontiguousarray(array)
        return cls(array.nbytes, array)

    @classmethod
    def virtual(cls, nbytes: int) -> "DataBlock":
        return cls(nbytes, None)

    @property
    def is_real(self) -> bool:
        return self.array is not None

    def to_bytes(self) -> bytes:
        """Raw bytes of a real block (row-major).  This *copies*; prefer
        :meth:`to_buffer` when a read-only view suffices."""
        if self.array is None:
            raise ValueError("virtual DataBlock has no bytes")
        COUNTERS.bytes_copied += self.nbytes
        return self.array.tobytes()

    def to_buffer(self) -> memoryview:
        """Zero-copy read-only byte view of a real block.

        The view aliases :attr:`array` (which in turn may alias a
        client's bound chunk or a store file) -- valid only while the
        block's producer leaves that memory untouched, which holds for
        the within-collective lifetimes the protocol creates.
        """
        if self.array is None:
            raise ValueError("virtual DataBlock has no bytes")
        return memoryview(self.array).cast("B").toreadonly()

    def __repr__(self) -> str:
        kind = "real" if self.is_real else "virtual"
        return f"DataBlock({kind}, {self.nbytes}B)"

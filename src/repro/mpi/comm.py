"""Per-rank communicator: the mpi4py-flavoured API processes use.

All operations are *process helpers*: invoke them with ``yield from``
inside a simulation process, e.g. ::

    yield from comm.send(dst=3, tag=FETCH, payload=req)
    msg = yield from comm.recv(tag=FETCH)

Blocking semantics follow the paper's implementation notes: ``send``
returns when the transfer has left the node (the SP2's blocking MPI
send), ``recv`` blocks until a matching message is in the mailbox.
``isend`` returns immediately with a delivery event for the
non-blocking variant the paper names as future work.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.mpi.message import CONTROL_MESSAGE_BYTES, MESSAGE_HEADER_BYTES, Message
from repro.mpi.network import Network
from repro.sim import Event, Timeout

__all__ = ["Communicator"]


class Communicator:
    """One rank's endpoint on a :class:`Network`."""

    def __init__(self, network: Network, rank: int) -> None:
        network._check_rank(rank)
        self.network = network
        self.rank = rank
        self.sim = network.sim
        self.spec = network.spec
        # hoisted for the per-message cost helpers
        self._handle_s = network.spec.request_handling_overhead
        self._mailbox = network.mailboxes[rank]

    # -- point to point -----------------------------------------------------
    def send(self, dst: int, tag: int, payload: Any = None, nbytes: Optional[int] = None):
        """Blocking send; completes when the transfer has left the node
        (links released) without waiting for the delivery event.
        ``nbytes`` defaults to the control-message wire size.

        Returns the transfer generator directly -- callers ``yield
        from`` it, so routing through an intermediate frame here would
        only add a hop to every resume of the transfer."""
        wire = CONTROL_MESSAGE_BYTES if nbytes is None else nbytes + MESSAGE_HEADER_BYTES
        return self.network.transfer(self.rank, dst, tag, payload, wire)

    def isend(self, dst: int, tag: int, payload: Any = None, nbytes: Optional[int] = None) -> Event:
        """Non-blocking send.  Returns an event that fires on delivery
        at the destination."""
        wire = CONTROL_MESSAGE_BYTES if nbytes is None else nbytes + MESSAGE_HEADER_BYTES
        done = self.sim.event(name=f"isend {self.rank}->{dst}")
        proc = self.sim.spawn(
            self._isend_proc(dst, tag, payload, wire, done),
            name=f"isend[{self.rank}->{dst}]",
        )
        # surface transfer errors through the returned event
        proc.add_callback(lambda p: done.fail(p.exception) if p.exception else None)
        return done

    def _isend_proc(self, dst, tag, payload, wire, done: Event):
        delivered = yield from self.network.transfer(self.rank, dst, tag, payload, wire)
        yield delivered
        done.succeed(delivered.value)

    def recv(self, src: Optional[int] = None, tag: Optional[int] = None,
             tags: Optional[Iterable[int]] = None,
             match: Optional[Callable[[Message], bool]] = None,
             timeout: Optional[float] = None):
        """Blocking receive.  Matches on source and/or tag; ``tags``
        accepts any of a set (used by serve loops that listen for both
        data and completion messages).  FIFO among matches.

        ``match`` further filters on message content (the reliability
        layer matches replies to the exact outstanding request, so a
        stale duplicate from a retried exchange can never be taken for
        the current one).  With ``timeout``, returns ``None`` when no
        matching message arrives within ``timeout`` seconds; the
        pending receive is withdrawn so a late message stays in the
        mailbox for a future receive instead of vanishing."""
        pred = self._match_pred(src, tag, tags, match)
        mailbox = self.network.mailboxes[self.rank]
        if timeout is None:
            msg = yield mailbox.get(pred)
            return msg
        get_ev = mailbox.get(pred)
        idx, value = yield self.sim.any_of([get_ev, self.sim.timeout(timeout)])
        if idx == 0:
            return value
        if get_ev.triggered:
            # the message raced the timeout within the same instant and
            # was already consumed from the mailbox: deliver it
            return get_ev.value
        mailbox.cancel(get_ev)
        return None

    def _match_pred(self, src: Optional[int], tag: Optional[int],
                    tags: Optional[Iterable[int]],
                    match: Optional[Callable[[Message], bool]],
                    ) -> Callable[[Message], bool]:
        """Build the message-matching predicate shared by ``recv`` and
        ``try_recv``.  The returned closure tests only the criteria
        actually given -- it runs once per queued message per receive,
        so dead ``is not None`` checks inside it are pure overhead."""
        if tag is not None and tags is not None:
            raise ValueError("pass either tag or tags, not both")
        if tags is not None:
            tagset = frozenset(tags)
            if src is None and match is None:
                return lambda msg: msg.tag in tagset
            return lambda msg: (
                msg.tag in tagset
                and (src is None or msg.src == src)
                and (match is None or match(msg))
            )
        if tag is not None:
            if src is None and match is None:
                return lambda msg: msg.tag == tag
            if src is None:
                return lambda msg: msg.tag == tag and match(msg)
            if match is None:
                return lambda msg: msg.tag == tag and msg.src == src
            return lambda msg: (
                msg.tag == tag and msg.src == src and match(msg)
            )
        if src is not None:
            if match is None:
                return lambda msg: msg.src == src
            return lambda msg: msg.src == src and match(msg)
        if match is not None:
            return match
        return lambda msg: True

    def match_pred(self, src: Optional[int] = None, tag: Optional[int] = None,
                   tags: Optional[Iterable[int]] = None,
                   match: Optional[Callable[[Message], bool]] = None,
                   ) -> Callable[[Message], bool]:
        """Public form of the predicate builder, for serve loops that
        hoist a loop-invariant predicate and receive with
        :meth:`recv_ev` instead of paying closure construction (and a
        delegating generator frame) per message."""
        return self._match_pred(src, tag, tags, match)

    def recv_ev(self, pred: Callable[[Message], bool]) -> Event:
        """Blocking receive, event form: ``msg = yield comm.recv_ev(p)``
        is :meth:`recv` with a prebuilt predicate and without the
        intermediate generator frame.  The hot serve loops build their
        predicate once per op and receive with this."""
        return self._mailbox.get(pred)

    def try_recv(self, src: Optional[int] = None, tag: Optional[int] = None,
                 tags: Optional[Iterable[int]] = None,
                 match: Optional[Callable[[Message], bool]] = None,
                 ) -> Optional[Message]:
        """Non-blocking receive: the oldest matching message already in
        the mailbox, or ``None``.  Plain call (not ``yield from``) --
        it consumes no simulated time.  Non-matching messages are left
        queued (the inter-op scheduler uses this to exert backpressure
        by refusing REQUESTs while its admission queue is full)."""
        pred = self._match_pred(src, tag, tags, match)
        return self.network.mailboxes[self.rank].try_get(pred)

    def probe_pending(self) -> int:
        """Number of undelivered messages in this rank's mailbox."""
        return len(self.network.mailboxes[self.rank])

    # -- local costs ---------------------------------------------------------
    def compute(self, seconds: float):
        """Charge local CPU/memory time on this rank."""
        if seconds > 0:
            yield self.sim.timeout(seconds)

    def handle(self):
        """Charge the per-message protocol-handling overhead."""
        yield from self.compute(self.spec.request_handling_overhead)

    def copy(self, nbytes: int, runs: int = 1):
        """Charge a gather/scatter memory copy."""
        yield from self.compute(self.spec.copy_time(nbytes, runs))

    # Event-returning twins of the cost helpers, for per-message hot
    # paths: ``yield comm.handle_ev()`` charges the same simulated time
    # as ``yield from comm.handle()`` -- the timeout is created at the
    # same point in dispatch order -- without spinning up a generator
    # frame per charge.  A zero-second charge returns the simulator's
    # shared pre-triggered event, which the engine consumes inline.
    def compute_ev(self, seconds: float) -> Event:
        """Event twin of :meth:`compute`."""
        if seconds > 0:
            return Timeout(self.sim, seconds)
        return self.sim.zero

    def handle_ev(self) -> Event:
        """Event twin of :meth:`handle`."""
        seconds = self._handle_s
        if seconds > 0:
            return Timeout(self.sim, seconds)
        return self.sim.zero

    def copy_ev(self, nbytes: int, runs: int = 1) -> Event:
        """Event twin of :meth:`copy`."""
        seconds = self.spec.copy_time(nbytes, runs)
        if seconds > 0:
            return Timeout(self.sim, seconds)
        return self.sim.zero

    # -- simple collectives (used by baselines and the harness) ---------------
    def bcast_send(self, ranks: Iterable[int], tag: int, payload: Any = None,
                   nbytes: Optional[int] = None):
        """Root side of a broadcast: sequential blocking sends, the way
        Panda's master server informs the other servers."""
        for r in ranks:
            if r == self.rank:
                continue
            yield from self.send(r, tag, payload, nbytes)

    def gather_recv(self, ranks: Iterable[int], tag: int):
        """Root side of a gather: collect one message from each rank,
        in any arrival order.  Returns {src: message}."""
        expected = {r for r in ranks if r != self.rank}
        out = {}
        while expected:
            msg = yield from self.recv(tag=tag)
            if msg.src not in expected:
                raise RuntimeError(
                    f"gather on rank {self.rank} got unexpected source {msg.src}"
                )
            expected.discard(msg.src)
            out[msg.src] = msg
        return out

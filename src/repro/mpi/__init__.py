"""Message-passing substrate: an MPI-like layer over the simulator.

The model is calibrated to the NAS SP2 figures in Table 1 of the paper:
43 microseconds one-way latency and 34 MB/s point-to-point bandwidth
(the measured MPI-F numbers; the 40 MB/s figure is switch hardware).

Contention model: each node has a half-duplex *out* link and *in* link,
both FIFO.  A transfer holds the sender's out link and the receiver's
in link for ``nbytes / bandwidth`` seconds; propagation latency is
added afterwards and does not occupy links.  This reproduces the two
effects the paper's analysis depends on: a node can neither send nor
receive faster than 34 MB/s, and concurrent senders to one node
serialise.
"""

from repro.mpi.comm import Communicator
from repro.mpi.datatypes import DataBlock
from repro.mpi.message import CONTROL_MESSAGE_BYTES, Message
from repro.mpi.network import Network

__all__ = [
    "CONTROL_MESSAGE_BYTES",
    "Communicator",
    "DataBlock",
    "Message",
    "Network",
]

"""The interconnect model.

One :class:`Network` owns, per rank, an *out* link and an *in* link
(FIFO :class:`~repro.sim.Resource` of capacity 1) plus a mailbox
(:class:`~repro.sim.Store`).  A transfer:

1. waits for the sender's out link,
2. waits for the receiver's in link (holding the out link -- this is
   safe: in links are never held while waiting, so no cycle exists),
3. holds both for ``nbytes / bandwidth``,
4. releases both; the message is delivered to the mailbox
   ``latency`` later (propagation does not occupy links).

A blocking send completes at step 4 (the local buffer is free); an
``isend`` completion event fires at mailbox delivery.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.machine import MachineSpec
from repro.mpi.message import Message
from repro.sim import Event, Resource, Simulator, Store
from repro.sim.trace import Trace

__all__ = ["Network"]


class Network:
    """A switch connecting ``n_nodes`` ranks under a :class:`MachineSpec`
    cost model."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        n_nodes: int,
        trace: Optional[Trace] = None,
        injector=None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("network needs at least one node")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        self.trace = trace
        #: optional :class:`repro.faults.FaultInjector`; when set, each
        #: delivery may be dropped (droppable tags only) or delayed.
        self.injector = injector
        self.out_links = [
            Resource(sim, 1, name=f"out[{i}]") for i in range(n_nodes)
        ]
        self.in_links = [Resource(sim, 1, name=f"in[{i}]") for i in range(n_nodes)]
        self.mailboxes = [Store(sim, name=f"mbox[{i}]") for i in range(n_nodes)]
        # accounting
        self.messages_sent = 0
        self.bytes_sent = 0

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_nodes:
            raise ValueError(f"rank {rank} out of range [0, {self.n_nodes})")

    def transfer(self, src: int, dst: int, tag: int, payload: Any, nbytes: int):
        """Process generator performing one transfer.  Returns (via
        StopIteration) the delivery :class:`~repro.sim.Event`, which
        fires when the message reaches the destination mailbox.

        The generator itself completes when the sender is free (links
        released), which is what a blocking send waits for.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"self-send on rank {src} (tag {tag})")
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        sim = self.sim
        out_ev = self.out_links[src].acquire()
        try:
            yield out_ev
        except BaseException:
            # interrupted (node crash) while queued: withdraw so the
            # dead process cannot be granted -- and forever pin -- a slot
            self.out_links[src].cancel(out_ev)
            raise
        try:
            in_ev = self.in_links[dst].acquire()
            try:
                yield in_ev
            except BaseException:
                self.in_links[dst].cancel(in_ev)
                raise
            try:
                transfer_time = nbytes / self.spec.network_bandwidth
                if transfer_time > 0:
                    yield sim.timeout(transfer_time)
            finally:
                self.in_links[dst].release()
        finally:
            self.out_links[src].release()
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.trace is not None:
            # the span both links were held for (the streaming time;
            # queueing for the links is visible as the gap before it)
            self.trace.emit(
                sim.now, "net", "net_xfer",
                src=src, dst=dst, tag=tag, nbytes=nbytes,
                service=transfer_time,
            )
        extra = 0.0
        if self.injector is not None:
            dropped, extra = self.injector.message_fault(src, dst, tag, nbytes)
            if dropped:
                # the sender already paid for the transfer; the message
                # vanishes in flight, so the delivery event never fires
                # and the receiver's timeout/retry machinery takes over
                return Event(sim, "dropped")
        # static name: one transfer per message makes per-delivery
        # f-strings measurable; src/dst are recoverable from the Message
        delivered = Event(sim, "delivery")
        sim.schedule(self.spec.network_latency + extra, self._deliver, src, dst, tag, payload, nbytes, delivered)
        return delivered

    def _deliver(self, src: int, dst: int, tag: int, payload: Any, nbytes: int, delivered: Event) -> None:
        msg = Message(src, dst, tag, payload, nbytes, arrived_at=self.sim.now)
        self.mailboxes[dst].put(msg)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "net",
                "message",
                src=src,
                dst=dst,
                tag=tag,
                nbytes=nbytes,
            )
        delivered.succeed(msg)

    def comm(self, rank: int) -> "Communicator":
        from repro.mpi.comm import Communicator

        return Communicator(self, rank)

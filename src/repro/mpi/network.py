"""The interconnect model.

One :class:`Network` owns, per rank, an *out* link and an *in* link
(FIFO :class:`~repro.sim.Resource` of capacity 1) plus a mailbox
(:class:`~repro.sim.Store`).  A transfer:

1. waits for the sender's out link,
2. waits for the receiver's in link (holding the out link -- this is
   safe: in links are never held while waiting, so no cycle exists),
3. holds both for ``nbytes / bandwidth``,
4. releases both; the message is delivered to the mailbox
   ``latency`` later (propagation does not occupy links).

A blocking send completes at step 4 (the local buffer is free); an
``isend`` completion event fires at mailbox delivery.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.machine import MachineSpec
from repro.mpi.message import Message
from repro.sim import Event, Resource, Simulator, Store, Timeout
from repro.sim.trace import Trace

__all__ = ["Network"]


class Network:
    """A switch connecting ``n_nodes`` ranks under a :class:`MachineSpec`
    cost model."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        n_nodes: int,
        trace: Optional[Trace] = None,
        injector=None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("network needs at least one node")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        self.trace = trace
        #: optional :class:`repro.faults.FaultInjector`; when set, each
        #: delivery may be dropped (droppable tags only) or delayed.
        self.injector = injector
        self.out_links = [
            Resource(sim, 1, name=f"out[{i}]") for i in range(n_nodes)
        ]
        self.in_links = [Resource(sim, 1, name=f"in[{i}]") for i in range(n_nodes)]
        self.mailboxes = [Store(sim, name=f"mbox[{i}]") for i in range(n_nodes)]
        # spec constants hoisted off the per-transfer path
        self._bandwidth = spec.network_bandwidth
        self._latency = spec.network_latency
        # accounting
        self.messages_sent = 0
        self.bytes_sent = 0

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_nodes:
            raise ValueError(f"rank {rank} out of range [0, {self.n_nodes})")

    def transfer(self, src: int, dst: int, tag: int, payload: Any, nbytes: int):
        """Process generator performing one transfer.  Returns (via
        StopIteration) the delivery :class:`~repro.sim.Event`, which
        fires when the message reaches the destination mailbox.

        The generator itself completes when the sender is free (links
        released), which is what a blocking send waits for.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"self-send on rank {src} (tag {tag})")
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        sim = self.sim
        out_link = self.out_links[src]
        out_ev = out_link.acquire()
        # an uncontended acquire comes back already triggered; yielding
        # it would resume this generator inline anyway (the engine
        # consumes triggered waitables without suspending), so skipping
        # the yield is the same schedule minus a generator round-trip
        if not out_ev._triggered:
            try:
                yield out_ev
            except BaseException:
                # interrupted (node crash) while queued: withdraw so the
                # dead process cannot be granted -- and forever pin -- a slot
                out_link.cancel(out_ev)
                raise
        try:
            in_link = self.in_links[dst]
            in_ev = in_link.acquire()
            if not in_ev._triggered:
                try:
                    yield in_ev
                except BaseException:
                    in_link.cancel(in_ev)
                    raise
            try:
                transfer_time = nbytes / self._bandwidth
                if transfer_time > 0:
                    yield Timeout(sim, transfer_time)
            finally:
                in_link.release()
        finally:
            out_link.release()
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.trace is not None:
            # the span both links were held for (the streaming time;
            # queueing for the links is visible as the gap before it)
            self.trace.emit(
                sim.now, "net", "net_xfer",
                src=src, dst=dst, tag=tag, nbytes=nbytes,
                service=transfer_time,
            )
        extra = 0.0
        if self.injector is not None:
            dropped, extra = self.injector.message_fault(src, dst, tag, nbytes)
            if dropped:
                # the sender already paid for the transfer; the message
                # vanishes in flight, so the delivery event never fires
                # and the receiver's timeout/retry machinery takes over
                return Event(sim, "dropped")
        # static name: one transfer per message makes per-delivery
        # f-strings measurable; src/dst are recoverable from the Message
        delivered = Event(sim, "delivery")
        # one packed argument: queue entries carry a single arg slot, so
        # this avoids a trampoline allocation per message
        sim.schedule(self._latency + extra, self._deliver,
                     (src, dst, tag, payload, nbytes, delivered))
        return delivered

    def _deliver(self, packed: tuple) -> None:
        src, dst, tag, payload, nbytes, delivered = packed
        msg = Message(src, dst, tag, payload, nbytes, arrived_at=self.sim.now)
        self.mailboxes[dst].put(msg)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "net",
                "message",
                src=src,
                dst=dst,
                tag=tag,
                nbytes=nbytes,
            )
        delivered.succeed(msg)

    def comm(self, rank: int) -> "Communicator":
        from repro.mpi.comm import Communicator

        return Communicator(self, rank)

"""Message envelopes.

A :class:`Message` is what lands in a rank's mailbox: source,
destination, an integer tag, an arbitrary Python payload (usually a
protocol dataclass from :mod:`repro.core.protocol`), and the wire size
that was charged for the transfer.

Wire sizes: data-bearing messages charge their payload bytes plus a
small header; pure control messages (requests, completions, schema
descriptors) charge :data:`CONTROL_MESSAGE_BYTES` -- a flat 256 bytes,
roughly what a marshalled region request costs, and small enough that
control traffic is latency- not bandwidth-dominated, as on the SP2.
"""

from __future__ import annotations

import itertools
from typing import Any

__all__ = ["Message", "CONTROL_MESSAGE_BYTES", "MESSAGE_HEADER_BYTES"]

#: wire size charged for control-plane messages.
CONTROL_MESSAGE_BYTES = 256
#: envelope overhead added to data-plane messages.
MESSAGE_HEADER_BYTES = 64

_serial = itertools.count()


class Message:
    """One delivered message.

    A plain slotted class rather than a (frozen) dataclass: one is
    built per delivery, and frozen-dataclass construction routes every
    field through ``object.__setattr__``, which is measurable at that
    rate.  Instances are treated as immutable by convention.
    """

    __slots__ = ("src", "dst", "tag", "payload", "nbytes", "arrived_at",
                 "serial")

    def __init__(self, src: int, dst: int, tag: int, payload: Any,
                 nbytes: int, arrived_at: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        #: simulation time at which the message entered the destination
        #: mailbox (set by the network).
        self.arrived_at = arrived_at
        #: global monotone id, for deterministic diagnostics.
        self.serial = next(_serial)

    def __repr__(self) -> str:
        return (
            f"Message({self.src}->{self.dst} tag={self.tag} "
            f"{self.nbytes}B {type(self.payload).__name__})"
        )

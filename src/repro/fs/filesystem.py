"""Per-I/O-node file system: the Unix-flavoured API Panda servers use.

``FileSystem`` hands out :class:`FileHandle` objects whose operations
are process helpers (``yield from fh.write(block)``), combining the
store (bytes) with the disk model (time).  Panda issues large aligned
requests itself, so the Panda path talks straight to the disk model;
the traditional-caching baseline layers :class:`repro.fs.cache.
BufferCache` between the two instead.
"""

from __future__ import annotations

from typing import Optional

from repro.fs.disk import DiskModel
from repro.fs.store import ExtentStore, MemoryStore
from repro.machine import MachineSpec
from repro.mpi.datatypes import DataBlock
from repro.sim import Simulator
from repro.sim.trace import Trace

__all__ = ["FileSystem", "FileHandle"]


class FileSystem:
    """One I/O node's file system."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        node: str = "ionode",
        real: bool = True,
        trace: Optional[Trace] = None,
        injector=None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.node = node
        self.trace = trace
        #: optional :class:`repro.faults.FaultInjector`: transient disk
        #: faults are injected in the disk model and retried (with
        #: exponential backoff, up to the spec's budget) in FileHandle.
        self.injector = injector
        self.store = MemoryStore() if real else ExtentStore()
        self.disk = DiskModel(sim, spec, node=f"{node}.disk", trace=trace,
                              injector=injector)

    @property
    def real(self) -> bool:
        return self.store.real

    def open(self, path: str, mode: str = "r") -> "FileHandle":
        """Open ``path``; mode "w" truncates/creates, "r" requires the
        file to exist, "a" appends (creates if missing)."""
        if mode == "w":
            self.store.create(path, truncate=True)
            offset = 0
        elif mode == "a":
            self.store.create(path, truncate=False)
            offset = self.store.size(path)
        elif mode == "r":
            if not self.store.exists(path):
                raise FileNotFoundError(f"{self.node}: no such file {path!r}")
            offset = 0
        else:
            raise ValueError(f"bad mode {mode!r}")
        return FileHandle(self, path, mode, offset)

    def exists(self, path: str) -> bool:
        return self.store.exists(path)

    def size(self, path: str) -> int:
        return self.store.size(path)

    def delete(self, path: str) -> None:
        self.store.delete(path)

    def read_all_bytes(self, path: str) -> bytes:
        """Zero-time access to real file contents (verification only)."""
        if not self.real:
            raise ValueError("virtual file system holds no bytes")
        return self.store.read_all(path)


class FileHandle:
    """An open file with a position; operations are process helpers."""

    def __init__(self, fs: FileSystem, path: str, mode: str, offset: int) -> None:
        self.fs = fs
        self.path = path
        self.mode = mode
        self.offset = offset
        self.closed = False
        self.bytes_written = 0
        self.bytes_read = 0

    def _check_open(self, *, write: bool) -> None:
        if self.closed:
            raise ValueError(f"I/O on closed file {self.path!r}")
        if write and self.mode == "r":
            raise ValueError(f"file {self.path!r} opened read-only")
        if not write and self.mode == "w" and False:  # reads after write allowed
            pass

    def seek(self, offset: int) -> None:
        """Reposition; costs nothing now, but a following request that
        breaks sequentiality pays the seek penalty in the disk model."""
        if offset < 0:
            raise ValueError("negative seek")
        self.offset = offset

    def _access(self, offset: int, nbytes: int, *, write: bool):
        """One disk request, retried with exponential backoff on
        transient faults (fault-injected file systems only).  The store
        is untouched until a request succeeds, so replays are safe."""
        disk = self.fs.disk
        injector = self.fs.injector
        if injector is None:
            yield from disk.access(self.path, offset, nbytes, write=write)
            return
        from repro.faults import FaultRecoveryError, TransientDiskError

        spec = injector.spec
        attempt = 0
        while True:
            try:
                yield from disk.access(self.path, offset, nbytes, write=write)
                return
            except TransientDiskError as exc:
                attempt += 1
                if attempt > spec.max_retries:
                    raise FaultRecoveryError(
                        f"{self.fs.node}: {'write' if write else 'read'} of "
                        f"{nbytes}B at {self.path!r}+{offset} still failing "
                        f"after {spec.max_retries} retries"
                    ) from exc
                injector.note_retry(
                    "disk", node=self.fs.node, path=self.path,
                    offset=offset, attempt=attempt,
                )
                yield self.fs.sim.timeout(injector.backoff_delay(attempt))

    def write(self, block: DataBlock):
        """Write ``block`` at the current offset (timed).  The block's
        bytes are handed to the store as a read-only view (no
        intermediate copy); the store itself performs the one real copy
        into the file buffer."""
        self._check_open(write=True)
        data = block.to_buffer() if (block.is_real and self.fs.real) else None
        if self.fs.real and data is None and block.nbytes > 0:
            raise ValueError(
                "real file system requires real payloads (got virtual block)"
            )
        yield from self._access(self.offset, block.nbytes, write=True)
        self.fs.store.write(self.path, self.offset, data, block.nbytes)
        self.offset += block.nbytes
        self.bytes_written += block.nbytes

    def read(self, nbytes: int):
        """Read ``nbytes`` at the current offset (timed).  Returns a
        :class:`DataBlock` (real or virtual to match the store).  Real
        blocks wrap the store's read-only view zero-copy: a straight
        ``frombuffer``, no byte duplication, and mutation-proof because
        the view is read-only."""
        self._check_open(write=False)
        yield from self._access(self.offset, nbytes, write=False)
        raw = self.fs.store.read(self.path, self.offset, nbytes)
        self.offset += nbytes
        self.bytes_read += nbytes
        if raw is None:
            return DataBlock.virtual(nbytes)
        import numpy as np

        return DataBlock.real(np.frombuffer(raw, dtype=np.uint8))

    def fsync(self):
        """Flush to disk.  The write path is write-through in this model
        (every write is charged full disk time), so fsync is free; it is
        kept as an explicit, traced event because the paper's methodology
        calls it out ("We flush the data to disk using fsync for each
        write operation")."""
        self._check_open(write=False)
        if self.fs.trace is not None:
            self.fs.trace.emit(self.fs.sim.now, self.fs.node, "fsync", path=self.path)
        return
        yield  # pragma: no cover - makes this a generator

    def close(self) -> None:
        self.closed = True

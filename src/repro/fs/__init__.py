"""File-system substrate: the per-I/O-node "AIX JFS" model.

Each Panda server runs on an I/O node that owns its own file system
(the NAS SP2 had no parallel file system; "Panda uses the AIX file
system directly on each i/o node", paper section 3).  We model that as
one :class:`FileSystem` per server, each with:

- a :class:`DiskModel` -- the timing model, calibrated to Table 1
  (see :mod:`repro.machine`), with sequential-access detection and a
  FIFO disk-arm resource;
- a byte store -- :class:`MemoryStore` keeps real bytes for
  verification, :class:`ExtentStore` keeps only sizes for the large
  virtual-payload sweeps;
- an optional :class:`BufferCache` with sequential read-ahead and
  write-behind, used by the traditional-caching baseline (Panda itself
  relies on the native file system's caching being driven well by its
  sequential access pattern, which the disk model's sequential /
  non-sequential distinction captures).
"""

from repro.fs.cache import BufferCache
from repro.fs.disk import DiskModel
from repro.fs.filesystem import FileHandle, FileSystem
from repro.fs.store import ExtentStore, MemoryStore

__all__ = [
    "BufferCache",
    "DiskModel",
    "ExtentStore",
    "FileHandle",
    "FileSystem",
    "MemoryStore",
]

"""A Unix-style buffer cache with prefetch and write-behind.

This is the substrate for the **traditional caching** baseline
([Pierce93]'s Intel CFS style, as characterised in the paper's related
work): I/O requests are served in arrival order through a per-I/O-node
block cache.  Panda itself does not use this cache -- its server-
directed plan already produces large sequential requests -- which is
exactly the architectural point the baseline comparison makes.

Model:

- the cache holds fixed-size blocks (default 64 KB) up to a capacity;
- writes fill blocks and mark them dirty (write-behind); a write that
  needs a block not resident evicts the least-recently-used block,
  flushing it (with any dirty neighbours, coalesced into one disk
  request) if dirty;
- reads hit resident blocks or miss to disk; a miss detected to be
  part of a forward-sequential stream prefetches ``readahead`` extra
  blocks in the same disk request;
- ``flush`` writes out all dirty blocks, coalescing adjacent ones.

The cache's performance failure mode is the paper's: when many compute
nodes interleave strided requests, blocks are evicted before their
neighbours arrive, so the disk sees many small, non-sequential
requests instead of few large sequential ones.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fs.disk import DiskModel
from repro.machine import MachineSpec
from repro.sim import Simulator
from repro.sim.trace import Trace

__all__ = ["BufferCache"]

BlockKey = Tuple[str, int]


@dataclass
class _Block:
    dirty: bool = False
    #: highest byte filled within the block (for tail blocks)
    filled: int = 0


class BufferCache:
    """Block cache in front of one :class:`DiskModel`."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        disk: DiskModel,
        store,
        capacity_bytes: int,
        block_bytes: int = 64 * 1024,
        readahead: int = 4,
        trace: Optional[Trace] = None,
        node: str = "cache",
    ) -> None:
        if block_bytes < 1 or capacity_bytes < block_bytes:
            raise ValueError("cache needs capacity >= one block")
        self.sim = sim
        self.spec = spec
        self.disk = disk
        self.store = store
        self.block_bytes = block_bytes
        self.capacity_blocks = capacity_bytes // block_bytes
        self.readahead = readahead
        self.trace = trace
        self.node = node
        self._blocks: "OrderedDict[BlockKey, _Block]" = OrderedDict()
        self._last_read_block: Dict[str, int] = {}
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- internals -------------------------------------------------------
    def _touch(self, key: BlockKey) -> None:
        self._blocks.move_to_end(key)

    def _resident(self, key: BlockKey) -> Optional[_Block]:
        return self._blocks.get(key)

    def _make_room(self, needed: int):
        """Evict LRU blocks until ``needed`` slots are free."""
        while len(self._blocks) + needed > self.capacity_blocks:
            key, block = next(iter(self._blocks.items()))
            yield from self._evict(key, block)

    def _evict(self, key: BlockKey, block: _Block):
        if block.dirty:
            yield from self._flush_run_from(key)
        else:
            self._blocks.pop(key, None)
            self.evictions += 1

    def _flush_run_from(self, key: BlockKey):
        """Flush the dirty block ``key`` together with any *resident,
        dirty, adjacent* successors, as one coalesced disk write."""
        path, idx = key
        run = [idx]
        j = idx + 1
        while True:
            nxt = self._blocks.get((path, j))
            if nxt is None or not nxt.dirty:
                break
            run.append(j)
            j += 1
        # also extend backwards so interleaved arrivals coalesce fully
        j = idx - 1
        while True:
            prv = self._blocks.get((path, j))
            if prv is None or not prv.dirty:
                break
            run.insert(0, j)
            j -= 1
        first = run[0]
        last = run[-1]
        offset = first * self.block_bytes
        # the coalesced disk write must cover the run's full *byte
        # extent*: a partially-filled interior block still occupies its
        # whole span on disk, so the length is measured from the first
        # block's start to the last block's high-water mark -- not the
        # sum of per-block fill levels, which underprices interior holes
        total = (last * self.block_bytes
                 + self._blocks[(path, last)].filled) - offset
        for k in run:
            self._blocks.pop((path, k))
            self.evictions += 1
        yield from self.disk.access(path, offset, total, write=True)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, self.node, "cache_flush",
                path=path, offset=offset, nbytes=total, blocks=len(run),
            )

    # -- public API ---------------------------------------------------------
    def write(self, path: str, offset: int, data: Optional[bytes], nbytes: int):
        """Write through the cache (write-behind).  ``data`` may be None
        in virtual mode; the store handles both."""
        # store the bytes immediately (correctness is store-side; the
        # cache only models *timing*)
        self.store.write(path, offset, data, nbytes)
        pos = offset
        end = offset + nbytes
        while pos < end:
            idx = pos // self.block_bytes
            key = (path, idx)
            block_end = (idx + 1) * self.block_bytes
            span = min(end, block_end) - pos
            blk = self._resident(key)
            if blk is None:
                yield from self._make_room(1)
                blk = _Block()
                self._blocks[key] = blk
            blk.dirty = True
            blk.filled = max(blk.filled, (pos + span) - idx * self.block_bytes)
            self._touch(key)
            pos += span

    def read(self, path: str, offset: int, nbytes: int):
        """Read through the cache, with sequential prefetch on misses.
        Returns raw bytes (or None in virtual mode)."""
        pos = offset
        end = offset + nbytes
        file_size = self.store.size(path)
        while pos < end:
            idx = pos // self.block_bytes
            key = (path, idx)
            block_end = (idx + 1) * self.block_bytes
            span = min(end, block_end) - pos
            blk = self._resident(key)
            if blk is not None:
                self.hits += 1
                self._touch(key)
            else:
                self.misses += 1
                # sequential stream? prefetch ahead
                seq = self._last_read_block.get(path) == idx - 1
                n_fetch = 1 + (self.readahead if seq else 0)
                # do not prefetch past EOF
                max_block = max(0, (file_size - 1) // self.block_bytes)
                n_fetch = min(n_fetch, max_block - idx + 1)
                n_fetch = max(n_fetch, 1)
                # never fetch more blocks than the cache can hold:
                # otherwise _make_room drains the cache empty and still
                # needs slots, and its next(iter(...)) would raise
                # StopIteration inside a generator (PEP 479)
                n_fetch = min(n_fetch, self.capacity_blocks)
                yield from self._make_room(n_fetch)
                fetch_bytes = min(n_fetch * self.block_bytes,
                                  max(file_size - idx * self.block_bytes, span))
                yield from self.disk.access(
                    path, idx * self.block_bytes, fetch_bytes, write=False
                )
                for k in range(idx, idx + n_fetch):
                    if (path, k) not in self._blocks:
                        # the tail block holds only the bytes up to EOF;
                        # marking it block_bytes full would overprice a
                        # later dirty flush of it
                        filled = min(
                            self.block_bytes,
                            max(file_size - k * self.block_bytes, 0),
                        )
                        self._blocks[(path, k)] = _Block(
                            dirty=False, filled=filled
                        )
                    self._touch((path, k))
            self._last_read_block[path] = idx
            pos += span
        return self.store.read(path, offset, nbytes)

    def flush(self, path: Optional[str] = None):
        """Write out all dirty blocks (optionally only for ``path``),
        coalescing adjacent runs, in ascending offset order."""
        while True:
            dirty = sorted(
                k for k, b in self._blocks.items()
                if b.dirty and (path is None or k[0] == path)
            )
            if not dirty:
                return
            yield from self._flush_run_from(dirty[0])

"""The disk/file-system timing model.

One :class:`DiskModel` per I/O node.  Requests are served FIFO by a
capacity-1 resource (the disk arm / JFS request queue).  Each request
costs :meth:`MachineSpec.fs_time`: a fixed per-request overhead (the
two-point calibration against the measured AIX peaks) plus streaming
at the raw disk rate, plus a seek penalty when the request is not
sequential with the previous one.

Sequentiality: a request is sequential when it targets the same path
as, and starts exactly at the ending offset of, the previous request
of the same direction-agnostic stream on this disk.  That matches the
behaviour Panda relies on: "If files are laid out more-or-less
sequentially on disk ... sequential file reads will translate to
inexpensive sequential disk reads".

In ``fast_disk`` mode (the paper's infinitely-fast-disk experiments)
requests cost zero time but still pass through the store, so data
correctness is unaffected.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.machine import MachineSpec
from repro.sim import Resource, Simulator
from repro.sim.trace import Trace

__all__ = ["DiskModel"]


class DiskModel:
    """Timing + contention model for one I/O node's disk."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        node: str = "disk",
        trace: Optional[Trace] = None,
        injector=None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.node = node
        self.trace = trace
        #: optional :class:`repro.faults.FaultInjector`; when set, each
        #: request may fail transiently (see :meth:`access`).
        self.injector = injector
        self.arm = Resource(sim, 1, name=f"{node}.arm")
        self._head: Optional[Tuple[str, int]] = None  # (path, next offset)
        # accounting
        self.requests = 0
        self.sequential_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_seconds = 0.0

    def is_sequential(self, path: str, offset: int) -> bool:
        return self._head is not None and self._head == (path, offset)

    def access(self, path: str, offset: int, nbytes: int, *, write: bool):
        """Process helper: perform one timed request.  Holds the disk
        arm for the full service time.

        Under fault injection a request may fail transiently: it costs
        the per-request overhead (the arm moved, no data streamed),
        leaves the head position unknown, and raises
        :class:`~repro.faults.TransientDiskError` -- the caller's retry
        loop (:class:`repro.fs.filesystem.FileHandle`) takes it from
        there."""
        t_arrive = self.sim.now
        yield self.arm.acquire()
        try:
            if self.injector is not None and self.injector.disk_fault(self.node):
                from repro.faults import TransientDiskError

                # one unit of per-request overhead, no data streamed
                # (zero in fast_disk mode, like every other fs cost)
                t = self.spec.fs_time(1, write=write, sequential=True)
                if t > 0:
                    yield self.sim.timeout(t)
                self.requests += 1
                self.busy_seconds += t
                self._head = None
                raise TransientDiskError(
                    f"{self.node}: transient {'write' if write else 'read'} "
                    f"error at {path!r}+{offset}"
                )
            sequential = self.is_sequential(path, offset)
            t = self.spec.fs_time(nbytes, write=write, sequential=sequential)
            if t > 0:
                yield self.sim.timeout(t)
            self._head = (path, offset + nbytes)
            self.requests += 1
            self.sequential_requests += 1 if sequential else 0
            self.busy_seconds += t
            if write:
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    self.node,
                    "disk_write" if write else "disk_read",
                    path=path,
                    offset=offset,
                    nbytes=nbytes,
                    sequential=sequential,
                    service=t,
                    wait=max(self.sim.now - t - t_arrive, 0.0),
                )
        finally:
            self.arm.release()

    def forget_head(self) -> None:
        """Invalidate the head position (e.g. after a cache flush wrote
        elsewhere); the next request pays a seek."""
        self._head = None

"""Byte stores backing the simulated file systems.

Two implementations of one small interface:

- :class:`MemoryStore` -- holds real bytes in ``bytearray``s, so tests
  and examples can verify bit-exact round trips and reconstruct files
  (e.g. concatenating server files written with a ``BLOCK,*,*`` schema
  into a traditional-order array).
- :class:`ExtentStore` -- records only file sizes; used with virtual
  payloads for the paper-scale sweeps.

Stores are pure state -- no simulation time passes here; timing lives
in :class:`repro.fs.disk.DiskModel`.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["MemoryStore", "ExtentStore"]


class MemoryStore:
    """Real bytes, one growable buffer per path."""

    real = True

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}

    def create(self, path: str, truncate: bool = True) -> None:
        if truncate or path not in self._files:
            self._files[path] = bytearray()

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        return len(self._files[path])

    def paths(self) -> list[str]:
        return sorted(self._files)

    def write(self, path: str, offset: int, data: Optional[bytes], nbytes: int) -> None:
        if data is None:
            raise ValueError("MemoryStore requires real bytes")
        if len(data) != nbytes:
            raise ValueError(f"write of {nbytes}B given {len(data)}B of data")
        buf = self._files[path]
        end = offset + nbytes
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data

    def read(self, path: str, offset: int, nbytes: int) -> bytes:
        buf = self._files[path]
        if offset + nbytes > len(buf):
            raise ValueError(
                f"read past EOF: {path} has {len(buf)}B, "
                f"requested [{offset}, {offset + nbytes})"
            )
        return bytes(buf[offset : offset + nbytes])

    def read_all(self, path: str) -> bytes:
        return bytes(self._files[path])

    def delete(self, path: str) -> None:
        del self._files[path]

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._files.values())


class ExtentStore:
    """Size-only store for virtual payloads.

    Reads validate against the recorded extent, so protocol bugs that
    would read past end-of-file still fail loudly in virtual mode.
    """

    real = False

    def __init__(self) -> None:
        self._sizes: Dict[str, int] = {}

    def create(self, path: str, truncate: bool = True) -> None:
        if truncate or path not in self._sizes:
            self._sizes[path] = 0

    def exists(self, path: str) -> bool:
        return path in self._sizes

    def size(self, path: str) -> int:
        return self._sizes[path]

    def paths(self) -> list[str]:
        return sorted(self._sizes)

    def write(self, path: str, offset: int, data: Optional[bytes], nbytes: int) -> None:
        self._sizes[path] = max(self._sizes[path], offset + nbytes)

    def read(self, path: str, offset: int, nbytes: int) -> None:
        if offset + nbytes > self._sizes[path]:
            raise ValueError(
                f"read past EOF: {path} has {self._sizes[path]}B, "
                f"requested [{offset}, {offset + nbytes})"
            )
        return None

    def delete(self, path: str) -> None:
        del self._sizes[path]

    def total_bytes(self) -> int:
        return sum(self._sizes.values())

"""Byte stores backing the simulated file systems.

Two implementations of one small interface:

- :class:`MemoryStore` -- holds real bytes in ``bytearray``s, so tests
  and examples can verify bit-exact round trips and reconstruct files
  (e.g. concatenating server files written with a ``BLOCK,*,*`` schema
  into a traditional-order array).
- :class:`ExtentStore` -- records only file sizes; used with virtual
  payloads for the paper-scale sweeps.

Stores are pure state -- no simulation time passes here; timing lives
in :class:`repro.fs.disk.DiskModel`.

Zero-copy contract: ``MemoryStore.read`` returns a **read-only**
``memoryview`` aliasing the file buffer -- one copy saved per read, and
mutating a returned view can never corrupt a committed file.  ``write``
accepts any C-contiguous buffer (bytes, memoryview, NumPy array).  A
live read view pins the underlying ``bytearray`` against in-place
resizing; a write that must grow a pinned file transparently reallocates
(old views keep seeing the pre-write snapshot).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.counters import COUNTERS

__all__ = ["MemoryStore", "ExtentStore"]


def _buffer_nbytes(data) -> int:
    nb = getattr(data, "nbytes", None)
    return nb if nb is not None else len(data)


class MemoryStore:
    """Real bytes, one growable buffer per path."""

    real = True

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}

    def create(self, path: str, truncate: bool = True) -> None:
        if truncate or path not in self._files:
            self._files[path] = bytearray()

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        return len(self._files[path])

    def paths(self) -> list[str]:
        return sorted(self._files)

    def write(self, path: str, offset: int, data, nbytes: int) -> None:
        if data is None:
            raise ValueError("MemoryStore requires real bytes")
        if _buffer_nbytes(data) != nbytes:
            raise ValueError(
                f"write of {nbytes}B given {_buffer_nbytes(data)}B of data"
            )
        buf = self._files[path]
        end = offset + nbytes
        if len(buf) < end:
            try:
                buf.extend(b"\x00" * (end - len(buf)))
            except BufferError:
                # a live read view pins the buffer; reallocate instead.
                # Old views keep the pre-write snapshot -- they can
                # neither observe nor corrupt this write.
                grown = bytearray(end)
                grown[: len(buf)] = buf
                self._files[path] = grown
                buf = grown
        buf[offset:end] = data
        COUNTERS.bytes_copied += nbytes

    def read(self, path: str, offset: int, nbytes: int) -> memoryview:
        """A read-only view of ``[offset, offset + nbytes)`` -- zero-copy."""
        buf = self._files[path]
        if offset + nbytes > len(buf):
            raise ValueError(
                f"read past EOF: {path} has {len(buf)}B, "
                f"requested [{offset}, {offset + nbytes})"
            )
        return memoryview(buf).toreadonly()[offset : offset + nbytes]

    def read_all(self, path: str) -> bytes:
        return bytes(self._files[path])

    def delete(self, path: str) -> None:
        del self._files[path]

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._files.values())


class ExtentStore:
    """Size-only store for virtual payloads.

    Reads validate against the recorded extent, so protocol bugs that
    would read past end-of-file still fail loudly in virtual mode.
    """

    real = False

    def __init__(self) -> None:
        self._sizes: Dict[str, int] = {}

    def create(self, path: str, truncate: bool = True) -> None:
        if truncate or path not in self._sizes:
            self._sizes[path] = 0

    def exists(self, path: str) -> bool:
        return path in self._sizes

    def size(self, path: str) -> int:
        return self._sizes[path]

    def paths(self) -> list[str]:
        return sorted(self._sizes)

    def write(self, path: str, offset: int, data: Optional[bytes], nbytes: int) -> None:
        self._sizes[path] = max(self._sizes[path], offset + nbytes)

    def read(self, path: str, offset: int, nbytes: int) -> None:
        if offset + nbytes > self._sizes[path]:
            raise ValueError(
                f"read past EOF: {path} has {self._sizes[path]}B, "
                f"requested [{offset}, {offset + nbytes})"
            )
        return None

    def delete(self, path: str) -> None:
        del self._sizes[path]

    def total_bytes(self) -> int:
        return sum(self._sizes.values())

"""Sub-chunking: splitting a chunk region into row-major spans.

Panda "uses a form of sub-chunking on disk (i.e., the internal
subdivision of chunks into smaller chunks) to break large disk chunks
into more manageable units on-the-fly" (paper, section 2), with a 1 MB
sub-chunk size for all experiments.

:func:`split_row_major` produces hyper-rectangular pieces that are
**consecutive, contiguous spans of the region's row-major
linearisation** -- so a server that writes the pieces in order performs
one strictly sequential file stream, which is the whole point of
server-directed I/O.

The greedy rule: take as many whole slabs along the leading dimension
as fit in the budget; when even a single slab is too large, recurse
into that slab along the next dimension.
"""

from __future__ import annotations

from typing import List

from repro.schema.regions import Region

__all__ = ["split_row_major"]


def split_row_major(region: Region, max_elems: int) -> List[Region]:
    """Split ``region`` into sub-regions of at most ``max_elems``
    elements each, consecutive and contiguous in row-major order.

    Properties (all property-tested):

    - the pieces tile ``region`` exactly (disjoint, union = region);
    - listed in ascending row-major order, piece *k+1* starts at the
      linear offset where piece *k* ends;
    - every piece has ``size <= max_elems``;
    - every piece spans the full extent of all trailing dimensions it
      does not split (so each piece is a single contiguous run of the
      region's linearisation).
    """
    if max_elems < 1:
        raise ValueError(f"max_elems must be >= 1, got {max_elems}")
    if region.empty:
        return []
    out: List[Region] = []
    _split(region, 0, max_elems, out)
    return out


def _split(region: Region, dim: int, max_elems: int, out: List[Region]) -> None:
    size = region.size
    if size <= max_elems:
        out.append(region)
        return
    extent = region.hi[dim] - region.lo[dim]
    per_slab = size // extent  # elements in one slab along `dim`
    if per_slab <= max_elems:
        # group whole slabs: floor(max/per_slab) >= 1 slabs per piece
        step = max(1, max_elems // per_slab)
        lo, hi = region.lo[dim], region.hi[dim]
        # hoist the unchanging prefix/suffix: this loop dominates plan
        # formation for large chunks, and only dim's extent varies
        lo_pre, lo_suf = region.lo[:dim], region.lo[dim + 1 :]
        hi_pre, hi_suf = region.hi[:dim], region.hi[dim + 1 :]
        for start in range(lo, hi, step):
            stop = start + step
            out.append(
                Region(
                    lo_pre + (start,) + lo_suf,
                    hi_pre + (stop if stop < hi else hi,) + hi_suf,
                )
            )
    else:
        # one slab is still too large: recurse into each slab
        if dim + 1 >= region.ndim:
            # rank-1 slab larger than max_elems cannot happen: per_slab
            # would be 1 <= max_elems.  Guard anyway.
            raise AssertionError("unsplittable region")  # pragma: no cover
        for i in range(region.lo[dim], region.hi[dim]):
            slab_lo = region.lo[:dim] + (i,) + region.lo[dim + 1 :]
            slab_hi = region.hi[:dim] + (i + 1,) + region.hi[dim + 1 :]
            _split(Region(slab_lo, slab_hi), dim + 1, max_elems, out)

"""Array schema algebra: HPF-style distributions, chunk geometry,
regions, and the reorganisation engine.

This package implements technique (1) of the paper -- storage of arrays
by subarray chunks in memory and on disk -- as pure geometry, decoupled
from the simulation.  Everything here is deterministic, side-effect
free, and heavily property-tested.

Key types:

- :class:`Region` -- a hyper-rectangle ``[lo, hi)`` in array index
  space, with intersection, containment, linearisation and
  contiguous-run analysis.
- :class:`Dist` / :data:`BLOCK` / :data:`NONE` -- per-dimension HPF
  distribution directives (``NONE`` is HPF's ``*``).
- :class:`Mesh` -- a logical processor mesh with row-major rank
  numbering.
- :class:`DataSchema` -- array shape x mesh x distribution: enumerates
  the chunk regions held by each mesh position.
- :func:`split_row_major` -- sub-chunking: split a region into
  hyper-rectangular pieces, each at most ``max_elems`` elements, that
  are *consecutive, contiguous spans of the region's row-major order*
  (the property Panda's sequential writes rely on).
- :mod:`repro.schema.reorganize` -- gather/scatter copies between
  regions and local chunk arrays, plus contiguous-run cost analysis.
"""

from repro.schema.chunking import Chunk, DataSchema
from repro.schema.distribution import BLOCK, CYCLIC, NONE, Dist, parse_dist
from repro.schema.layout import Mesh
from repro.schema.regions import Region
from repro.schema.split import split_row_major
from repro.schema.reorganize import (
    extract_region,
    gather_into,
    inject_region,
    region_runs,
)

__all__ = [
    "BLOCK",
    "CYCLIC",
    "Chunk",
    "DataSchema",
    "Dist",
    "Mesh",
    "NONE",
    "Region",
    "extract_region",
    "gather_into",
    "inject_region",
    "parse_dist",
    "region_runs",
    "split_row_major",
]

"""Hyper-rectangular regions of array index space.

A :class:`Region` is the half-open box ``[lo[0], hi[0]) x ... x
[lo[n-1], hi[n-1])``.  Regions are the currency of the whole system:
memory chunks, disk chunks, sub-chunks, and the logical sub-chunk
requests exchanged between Panda clients and servers are all regions in
the *global* index space of an array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.counters import COUNTERS

__all__ = ["Region", "clear_runs_cache", "runs_within"]


@dataclass(frozen=True)
class Region:
    """A half-open hyper-rectangle ``[lo, hi)`` in n-dimensional index
    space.  Immutable and hashable."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(f"rank mismatch: lo={self.lo} hi={self.hi}")
        if not self.lo:
            raise ValueError("regions must have rank >= 1")
        for l, h in zip(self.lo, self.hi):
            if h < l:
                raise ValueError(f"inverted extent in region lo={self.lo} hi={self.hi}")
        # normalise: tuples, not lists
        lo = tuple(int(x) for x in self.lo)
        hi = tuple(int(x) for x in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        # regions key every geometry memo (runs_within,
        # chunks_intersecting, the plan cache); precomputing the hash
        # and size here turns each lookup's rehash into one attribute
        # load
        object.__setattr__(self, "_hash", hash((lo, hi)))
        n = 1
        for l, h in zip(lo, hi):
            n *= h - l
        object.__setattr__(self, "_size", n)

    def __hash__(self) -> int:  # cached; dataclass keeps explicit hashes
        return self._hash

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_shape(cls, shape: Sequence[int]) -> "Region":
        """The full region ``[0, shape)``."""
        return cls(tuple(0 for _ in shape), tuple(int(s) for s in shape))

    # -- basic geometry ---------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Number of elements (0 if empty)."""
        return self._size

    @property
    def empty(self) -> bool:
        # extents are validated non-negative, so zero volume means some
        # extent is zero
        return self._size == 0

    def nbytes(self, itemsize: int) -> int:
        return self.size * itemsize

    # -- set operations -----------------------------------------------------
    def intersect(self, other: "Region") -> Optional["Region"]:
        """The overlap of two regions, or None when they are disjoint
        (an empty-overlap, zero-volume touch also yields None)."""
        if self.ndim != other.ndim:
            raise ValueError("rank mismatch in intersect")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Region(lo, hi)

    def contains(self, other: "Region") -> bool:
        """True when ``other`` lies entirely inside this region."""
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    # -- coordinate transforms -----------------------------------------------
    def translate(self, offset: Sequence[int]) -> "Region":
        """Shift the region by ``offset`` (may be negative)."""
        return Region(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def relative_to(self, origin: Sequence[int]) -> "Region":
        """Express this (global) region in coordinates local to a box
        whose lowest corner sits at ``origin``."""
        return self.translate(tuple(-o for o in origin))

    def slices(self) -> Tuple[slice, ...]:
        """NumPy basic-indexing slices selecting this region from an
        array whose origin coincides with index 0."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))

    # -- row-major structure ---------------------------------------------------
    def linear_offset_of(self, point: Sequence[int]) -> int:
        """Row-major linear offset of ``point`` *within this region*."""
        if not self.contains_point(point):
            raise ValueError(f"{tuple(point)} outside region {self}")
        off = 0
        for (l, _h), p, extent in zip(zip(self.lo, self.hi), point, self.shape):
            off = off * extent + (p - l)
        return off

    def point_at_linear_offset(self, offset: int) -> Tuple[int, ...]:
        """Inverse of :meth:`linear_offset_of`."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside region of size {self.size}")
        coords = []
        for extent in reversed(self.shape):
            coords.append(offset % extent)
            offset //= extent
        return tuple(l + c for l, c in zip(self.lo, reversed(coords)))

    def contiguous_runs_within(self, container: "Region") -> Tuple[int, int]:
        """Decompose this region into contiguous runs of the row-major
        linearisation of ``container``.

        Returns ``(n_runs, run_length)`` with ``n_runs * run_length ==
        self.size``.  ``container`` must contain ``self``.

        This is the cost kernel for strided access: a client holding its
        chunk as a row-major array services a sub-chunk request with
        ``n_runs`` memcpy calls of ``run_length`` elements each.
        """
        if not container.contains(self):
            raise ValueError(f"{self} not inside container {container}")
        if self.empty:
            return (0, 0)
        n = self.ndim
        # count trailing dimensions that self spans fully in container
        k = 0
        for i in range(n - 1, -1, -1):
            if self.lo[i] == container.lo[i] and self.hi[i] == container.hi[i]:
                k += 1
            else:
                break
        if k == n:
            return (1, self.size)
        # the first (from the right) partial dimension merges with the
        # fully-spanned suffix into single runs
        run = self.shape[n - 1 - k]
        for i in range(n - k, n):
            run *= container.shape[i]
        runs = 1
        for i in range(0, n - 1 - k):
            runs *= self.shape[i]
        return (runs, run)

    def iter_runs_within(self, container: "Region") -> Iterator[Tuple[Tuple[int, ...], int]]:
        """Enumerate the contiguous runs of this region in the row-major
        linearisation of ``container``: yields ``(start_point,
        run_elems)`` in ascending order.

        Each run is simultaneously contiguous in the container *and* in
        a row-major array holding just this region (the trailing
        dimensions a run spans fully in the container are spanned fully
        by the region too), which is what lets clients stream runs
        without re-buffering.
        """
        n_runs, run_len = self.contiguous_runs_within(container)
        if n_runs == 0:
            return
        # leading dims that vary across runs
        lead = 0
        acc = 1
        for extent in self.shape:
            if acc == n_runs:
                break
            acc *= extent
            lead += 1
        lead_region = Region(self.lo[:lead], self.hi[:lead]) if lead else None
        if lead_region is None:
            yield (self.lo, run_len)
            return
        tail = self.lo[lead:]
        for lead_pt in lead_region.iter_points():
            yield (lead_pt + tail, run_len)

    def iter_points(self) -> Iterator[Tuple[int, ...]]:
        """Iterate all points in row-major order (small regions only --
        used by tests)."""
        if self.empty:
            return
        point = list(self.lo)
        n = self.ndim
        while True:
            yield tuple(point)
            i = n - 1
            while i >= 0:
                point[i] += 1
                if point[i] < self.hi[i]:
                    break
                point[i] = self.lo[i]
                i -= 1
            if i < 0:
                return

    def __repr__(self) -> str:
        spans = ",".join(f"{l}:{h}" for l, h in zip(self.lo, self.hi))
        return f"Region[{spans}]"


#: memo for :func:`runs_within`; cleared wholesale when full (the
#: working set of (piece, sub-chunk) pairs per sweep is far smaller).
_RUNS_CACHE: dict = {}
_RUNS_CACHE_MAX = 1 << 16


def clear_runs_cache() -> None:
    """Empty the runs memo (see ``repro.bench.profiling.clear_caches``)."""
    _RUNS_CACHE.clear()


def runs_within(region: Region, container: Region) -> Tuple[int, int]:
    """Memoised :meth:`Region.contiguous_runs_within`.

    The protocol evaluates the same (piece region, sub-chunk region)
    pairs once per sub-chunk per collective -- across a timestep loop or
    a figure sweep the same geometry recurs thousands of times, so the
    pure result is cached process-wide.
    """
    key = (region, container)
    hit = _RUNS_CACHE.get(key)
    if hit is not None:
        COUNTERS.geom_cache_hits += 1
        return hit
    COUNTERS.geom_cache_misses += 1
    result = region.contiguous_runs_within(container)
    if len(_RUNS_CACHE) >= _RUNS_CACHE_MAX:
        _RUNS_CACHE.clear()
    _RUNS_CACHE[key] = result
    return result

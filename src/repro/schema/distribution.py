"""HPF-style per-dimension distribution directives.

Panda supports applications that distribute arrays "using HPF-style
BLOCK- and *-based array schemas" (paper, section 2).  We implement
exactly that vocabulary:

- :data:`BLOCK` -- the dimension is divided into contiguous blocks of
  size ``ceil(N / P)`` across a mesh dimension of ``P`` positions (the
  HPF BLOCK rule; trailing positions may receive a short or empty
  block).
- :data:`NONE` -- HPF's ``*``: the dimension is not distributed; every
  chunk spans it fully.

:data:`CYCLIC` is declared for API completeness (it is the third HPF
directive) but rejected by :class:`repro.schema.chunking.DataSchema`,
because Panda's chunk model -- one hyper-rectangle per mesh position --
cannot express it.  The paper does not use it either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

__all__ = ["Dist", "BLOCK", "NONE", "CYCLIC", "parse_dist", "block_span"]


@dataclass(frozen=True)
class Dist:
    """A distribution directive for one array dimension."""

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("BLOCK", "NONE", "CYCLIC"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")

    @property
    def distributed(self) -> bool:
        """True when this directive consumes a mesh dimension."""
        return self.kind != "NONE"

    def __repr__(self) -> str:
        return "*" if self.kind == "NONE" else self.kind


#: divide the dimension into contiguous blocks across a mesh dimension.
BLOCK = Dist("BLOCK")
#: HPF ``*``: the dimension is not distributed.
NONE = Dist("NONE")
#: HPF CYCLIC; declared but not supported by Panda's chunk model.
CYCLIC = Dist("CYCLIC")

_ALIASES = {
    "block": BLOCK,
    "BLOCK": BLOCK,
    "*": NONE,
    "none": NONE,
    "NONE": NONE,
    "cyclic": CYCLIC,
    "CYCLIC": CYCLIC,
}


def parse_dist(spec: Union[str, Dist]) -> Dist:
    """Accept a :class:`Dist` or one of the spellings ``"BLOCK"``,
    ``"*"``, ``"NONE"``, ``"CYCLIC"`` (case-insensitive)."""
    if isinstance(spec, Dist):
        return spec
    try:
        return _ALIASES[spec if spec == "*" else spec.upper()]
    except (KeyError, AttributeError):
        raise ValueError(f"cannot parse distribution directive {spec!r}") from None


def parse_dists(specs: Sequence[Union[str, Dist]]) -> tuple[Dist, ...]:
    """Parse a whole per-dimension directive list."""
    return tuple(parse_dist(s) for s in specs)


def block_span(extent: int, parts: int, index: int) -> tuple[int, int]:
    """The half-open span ``[lo, hi)`` of block ``index`` when an extent
    of ``extent`` indices is divided into ``parts`` HPF BLOCK pieces.

    HPF rule: block size is ``ceil(extent / parts)``; the final blocks
    may be short or empty.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if not 0 <= index < parts:
        raise ValueError(f"block index {index} out of range for {parts} parts")
    b = -(-extent // parts)  # ceil division
    lo = min(index * b, extent)
    hi = min(lo + b, extent)
    return lo, hi

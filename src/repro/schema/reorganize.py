"""The reorganisation engine: copying data between regions and chunks.

"In Panda's server-directed i/o architecture, array data is
automatically reorganized whenever the in-memory schema and the on-disk
schema differ" (paper, section 3).  Mechanically, reorganisation is
nothing but region-shaped gather/scatter copies:

- a **client** asked for sub-chunk piece *R* gathers ``R`` out of its
  local chunk (``extract_region``), which is a strided read when *R*
  does not span the chunk's trailing dimensions;
- a **server** assembling a sub-chunk scatters each received piece into
  its sub-chunk buffer (``inject_region``), producing the chunk in
  traditional (row-major) order;
- the reverse happens on reads.

All functions operate on C-contiguous NumPy arrays holding a chunk in
row-major order, with the chunk's global origin given separately, so
the same code serves memory chunks, disk chunks and sub-chunk buffers.

``region_runs`` exposes the contiguous-run structure used by the cost
model (one memcpy per run).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.counters import COUNTERS
from repro.schema.regions import Region, runs_within

__all__ = ["extract_region", "inject_region", "gather_into", "region_runs"]


def _local_slices(region: Region, origin: Sequence[int], shape: Tuple[int, ...]) -> Tuple[slice, ...]:
    """Slices selecting global ``region`` from a chunk array of ``shape``
    whose lowest global corner is ``origin``."""
    local = region.relative_to(origin)
    if any(l < 0 for l in local.lo) or any(h > s for h, s in zip(local.hi, shape)):
        raise ValueError(
            f"region {region} does not fit in chunk at origin {tuple(origin)} "
            f"with shape {shape}"
        )
    return local.slices()


def extract_region(
    chunk: np.ndarray, origin: Sequence[int], region: Region
) -> np.ndarray:
    """Gather global ``region`` out of ``chunk`` (whose global origin is
    ``origin``) as a C-contiguous array of ``region.shape``.

    Zero-copy fast path: when the slice is a single contiguous run of
    the chunk (it spans the trailing dimensions), the returned array is
    a *view aliasing* ``chunk`` -- no bytes move.  Callers must treat
    the result as read-only or copy before mutating.  Strided regions
    are gathered into a fresh buffer as before.
    """
    sl = _local_slices(region, origin, chunk.shape)
    view = chunk[sl]
    if view.flags["C_CONTIGUOUS"]:
        return view
    COUNTERS.bytes_copied += view.nbytes
    return np.ascontiguousarray(view)


def inject_region(
    chunk: np.ndarray, origin: Sequence[int], region: Region, data: np.ndarray
) -> None:
    """Scatter ``data`` (shaped like ``region``) into ``chunk`` at the
    position of global ``region``."""
    sl = _local_slices(region, origin, chunk.shape)
    view = chunk[sl]
    data = np.asarray(data)
    if data.shape != view.shape:
        data = data.reshape(view.shape)
    view[...] = data
    COUNTERS.bytes_copied += view.nbytes


def gather_into(
    dst: np.ndarray,
    dst_origin: Sequence[int],
    src: np.ndarray,
    src_origin: Sequence[int],
    region: Region,
) -> None:
    """Copy global ``region`` from ``src`` into ``dst`` where both are
    chunk arrays with the given global origins.  One call performs a
    full reorganisation step without intermediate buffers."""
    src_sl = _local_slices(region, src_origin, src.shape)
    dst_sl = _local_slices(region, dst_origin, dst.shape)
    dst[dst_sl] = src[src_sl]


def region_runs(region: Region, chunk_region: Region) -> Tuple[int, int]:
    """Contiguous-run structure of accessing ``region`` inside a chunk
    stored row-major over ``chunk_region``: ``(n_runs, run_elems)``.

    The simulation charges ``copy_time(nbytes, n_runs)`` for a gather or
    scatter; ``n_runs == 1`` means the access is one contiguous span
    (and, for a piece equal to the whole transfer, can be sent
    zero-copy).
    """
    return runs_within(region, chunk_region)

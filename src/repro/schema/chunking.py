"""Data schemas: array shape x mesh x distribution -> chunk geometry.

A :class:`DataSchema` answers the questions Panda's clients and servers
ask during plan formation:

- which region of the array does mesh position *p* hold?  (`chunk_region`)
- what are all the chunks, in canonical order?  (`chunks`)
- which chunks intersect a given region?  (`chunks_intersecting`)

"Natural chunking" (the paper's default) is simply a disk
:class:`DataSchema` equal to the memory one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.counters import COUNTERS
from repro.schema.distribution import Dist, block_span, parse_dist
from repro.schema.layout import Mesh
from repro.schema.regions import Region

__all__ = ["Chunk", "DataSchema"]

#: process-wide memo of chunks_intersecting, keyed (schema, region).
#: Schemas are value-hashable, so the fresh-but-equal instances a sweep
#: builds per point share one entry per distinct geometry instead of
#: re-missing per instance.  Cleared wholesale when full (the working
#: set of any one sweep is far smaller); ``clear_geometry_caches``
#: empties it explicitly for counter-exact benchmarking.
_INTERSECT_CACHE: dict = {}
_INTERSECT_CACHE_MAX = 1 << 16

#: process-wide memo of chunk lists, same keying rationale.
_CHUNKS_CACHE: dict = {}
_CHUNKS_CACHE_MAX = 1 << 10


def clear_geometry_caches() -> None:
    """Empty the schema-level geometry memos (chunk lists and
    intersection queries).  The benchmark harness calls this between
    suites so cache-hit counters are exact per suite regardless of
    suite order."""
    _INTERSECT_CACHE.clear()
    _CHUNKS_CACHE.clear()


@dataclass(frozen=True)
class Chunk:
    """One chunk of a schema: its canonical id, the mesh coordinates of
    its owner position, and its global region.  May be empty when the
    HPF BLOCK rule leaves trailing mesh positions without data."""

    index: int
    mesh_coords: Tuple[int, ...]
    region: Region

    @property
    def empty(self) -> bool:
        return self.region.empty


@dataclass(frozen=True)
class DataSchema:
    """An HPF BLOCK/* decomposition of an array over a mesh.

    ``dists`` has one directive per *array* dimension; the directives
    that are ``BLOCK`` consume mesh dimensions in order, so the number
    of BLOCK directives must equal the mesh rank.  (This matches the
    paper's API, where ``memory_layout = {8, 8}`` pairs with
    ``{BLOCK, BLOCK, NONE}``.)
    """

    shape: Tuple[int, ...]
    mesh: Mesh
    dists: Tuple[Dist, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dists", tuple(parse_dist(d) for d in self.dists))
        if not self.shape:
            raise ValueError("array rank must be >= 1")
        if any(s < 1 for s in self.shape):
            raise ValueError(f"array shape must be positive: {self.shape}")
        if len(self.dists) != len(self.shape):
            raise ValueError(
                f"{len(self.dists)} directives for rank-{len(self.shape)} array"
            )
        for d in self.dists:
            if d.kind == "CYCLIC":
                raise NotImplementedError(
                    "CYCLIC distributions are outside Panda's chunk model "
                    "(one hyper-rectangle per mesh position); use BLOCK or *"
                )
        n_block = sum(1 for d in self.dists if d.distributed)
        if n_block != self.mesh.ndim:
            raise ValueError(
                f"schema has {n_block} BLOCK dimensions but the mesh has "
                f"rank {self.mesh.ndim}; they must match"
            )
        # schemas key the process-wide geometry memos below; cache the
        # hash so each lookup rehashes one int, not three tuples
        object.__setattr__(
            self, "_hash", hash((self.shape, self.mesh, self.dists))
        )

    def __hash__(self) -> int:  # cached; dataclass keeps explicit hashes
        return self._hash

    # -- factory -----------------------------------------------------------
    @classmethod
    def build(
        cls,
        shape: Sequence[int],
        mesh_dims: Sequence[int],
        dists: Sequence[Union[str, Dist]],
    ) -> "DataSchema":
        return cls(tuple(shape), Mesh(tuple(mesh_dims)), tuple(parse_dist(d) for d in dists))

    # -- geometry -----------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_chunks(self) -> int:
        """Number of mesh positions (= chunks, some possibly empty)."""
        return self.mesh.size

    @property
    def full_region(self) -> Region:
        return Region.from_shape(self.shape)

    def chunk_region(self, mesh_coords: Sequence[int]) -> Region:
        """The global region held by the given mesh position."""
        coords = tuple(mesh_coords)
        if len(coords) != self.mesh.ndim:
            raise ValueError(
                f"mesh coords rank {len(coords)} != mesh rank {self.mesh.ndim}"
            )
        lo: List[int] = []
        hi: List[int] = []
        m = 0  # next mesh dimension to consume
        for extent, dist in zip(self.shape, self.dists):
            if dist.distributed:
                l, h = block_span(extent, self.mesh.dims[m], coords[m])
                m += 1
            else:
                l, h = 0, extent
            lo.append(l)
            hi.append(h)
        return Region(tuple(lo), tuple(hi))

    # -- geometry caches ---------------------------------------------------
    # The schema is immutable, so its chunk list and intersection
    # queries are pure; both are memoised on the instance (lazily, via
    # object.__setattr__ -- the attributes are not dataclass fields, so
    # equality and hashing are unaffected).  Plan formation asks these
    # questions once per sub-chunk per collective; a timestep loop or a
    # figure sweep repeats them thousands of times.

    def _chunk_list(self) -> Tuple[Chunk, ...]:
        """All chunks (including empty ones) by canonical id, cached on
        the instance and shared process-wide between equal schemas."""
        try:
            return self._chunks_cache
        except AttributeError:
            chunks = _CHUNKS_CACHE.get(self)
            if chunks is None:
                chunks = tuple(
                    Chunk(i, coords, self.chunk_region(coords))
                    for i, coords in enumerate(self.mesh.iter_coords())
                )
                if len(_CHUNKS_CACHE) >= _CHUNKS_CACHE_MAX:
                    _CHUNKS_CACHE.clear()
                _CHUNKS_CACHE[self] = chunks
            object.__setattr__(self, "_chunks_cache", chunks)
            return chunks

    def chunk(self, index: int) -> Chunk:
        """Chunk by canonical (row-major mesh) id."""
        chunks = self._chunk_list()
        if not 0 <= index < len(chunks):
            raise ValueError(
                f"mesh index {index} out of range (size {len(chunks)})"
            )
        return chunks[index]

    def chunks(self, include_empty: bool = False) -> Iterator[Chunk]:
        """All chunks in canonical order.  Empty chunks (possible when
        mesh dims exceed array extents) are skipped unless requested."""
        for c in self._chunk_list():
            if include_empty or not c.empty:
                yield c

    def chunks_intersecting(self, region: Region) -> Tuple[Tuple[Chunk, Region], ...]:
        """All (chunk, overlap) pairs whose region meets ``region``,
        in canonical chunk order.  Memoised process-wide per (schema,
        region) -- the returned tuple is the cached object itself, so
        hits cost one dict probe and no copy.

        Rather than scanning every chunk, the HPF BLOCK rule gives the
        candidate mesh coordinates directly: in each distributed
        dimension, blocks of size ``b = ceil(extent / parts)`` overlap
        ``[lo, hi)`` exactly for indices ``lo // b .. (hi - 1) // b``.
        A miss evaluates the whole candidate grid -- coordinates, chunk
        ids and per-dimension overlap bounds -- as NumPy array
        arithmetic (one vectorized computation per distinct geometry),
        flattened in row-major order so the pairs come out in ascending
        canonical id, exactly as a per-candidate scan would list them.
        """
        key = (self, region)
        hit = _INTERSECT_CACHE.get(key)
        if hit is not None:
            COUNTERS.geom_cache_hits += 1
            return hit
        COUNTERS.geom_cache_misses += 1
        out = self._intersections_of(region)
        if len(_INTERSECT_CACHE) >= _INTERSECT_CACHE_MAX:
            _INTERSECT_CACHE.clear()
        _INTERSECT_CACHE[key] = out
        return out

    def _intersections_of(self, region: Region) -> Tuple[Tuple[Chunk, Region], ...]:
        """Uncached body of :meth:`chunks_intersecting`."""
        if region.empty:
            return ()
        chunks = self._chunk_list()
        dims = self.mesh.dims
        # per distributed dimension: candidate coords and the overlap
        # interval of every candidate's block with the query, as arrays
        coord_axes: List[np.ndarray] = []
        lo_axes: List[np.ndarray] = []
        hi_axes: List[np.ndarray] = []
        # per array dimension: the fixed overlap of non-distributed
        # dims, or None where a distributed axis will be substituted
        fixed: List[Tuple[int, int]] = []
        m = 0
        for extent, dist, rl, rh in zip(self.shape, self.dists, region.lo, region.hi):
            if dist.distributed:
                parts = dims[m]
                m += 1
                b = -(-extent // parts)
                lo_i = max(0, rl // b)
                hi_i = min(parts - 1, (rh - 1) // b)
                if lo_i > hi_i:
                    return ()
                coords = np.arange(lo_i, hi_i + 1, dtype=np.int64)
                starts = coords * b
                # trailing mesh positions may hold a short or empty
                # block (the HPF rule); clip to the array extent
                stops = np.minimum(starts + b, extent)
                coord_axes.append(coords)
                lo_axes.append(np.maximum(starts, rl))
                hi_axes.append(np.minimum(stops, rh))
                fixed.append((-1, -1))  # placeholder, filled per candidate
            else:
                l0, h0 = max(rl, 0), min(rh, extent)
                if h0 <= l0:
                    return ()
                fixed.append((l0, h0))
        if not coord_axes:
            # no distributed dimensions: the single chunk spans the array
            chunk = chunks[0]
            overlap = chunk.region.intersect(region)
            return ((chunk, overlap),) if overlap is not None else ()
        # the full candidate grid at once: row-major ('ij') flattening
        # matches the canonical-id cartesian order
        coord_g = np.meshgrid(*coord_axes, indexing="ij")
        lo_g = [g.ravel() for g in np.meshgrid(*lo_axes, indexing="ij")]
        hi_g = [g.ravel() for g in np.meshgrid(*hi_axes, indexing="ij")]
        idx = coord_g[0].astype(np.int64)
        for j in range(1, len(coord_g)):
            idx = idx * dims[j] + coord_g[j]
        idx_flat = idx.ravel()
        # survivors: positive overlap volume in every distributed
        # dimension (empty trailing blocks fall out here)
        valid = hi_g[0] > lo_g[0]
        for j in range(1, len(lo_g)):
            valid &= hi_g[j] > lo_g[j]
        out: List[Tuple[Chunk, Region]] = []
        for flat_pos in np.nonzero(valid)[0].tolist():
            lo_pt: List[int] = []
            hi_pt: List[int] = []
            a = 0
            for d, (l0, h0) in enumerate(fixed):
                if self.dists[d].distributed:
                    lo_pt.append(int(lo_g[a][flat_pos]))
                    hi_pt.append(int(hi_g[a][flat_pos]))
                    a += 1
                else:
                    lo_pt.append(l0)
                    hi_pt.append(h0)
            out.append(
                (chunks[int(idx_flat[flat_pos])],
                 Region(tuple(lo_pt), tuple(hi_pt)))
            )
        return tuple(out)

    def owner_of_point(self, point: Sequence[int]) -> Chunk:
        """The chunk containing ``point`` (computed directly, not by
        search)."""
        coords: List[int] = []
        m = 0
        for extent, dist, p in zip(self.shape, self.dists, point):
            if not 0 <= p < extent:
                raise ValueError(f"point {tuple(point)} outside array {self.shape}")
            if dist.distributed:
                parts = self.mesh.dims[m]
                b = -(-extent // parts)
                coords.append(p // b)
                m += 1
        idx = self.mesh.index_of(tuple(coords))
        return self.chunk(idx)

    # -- descriptions -------------------------------------------------------
    def describe(self) -> dict:
        """A plain-data description (what travels in the collective
        request and what the ``.schema`` file stores)."""
        return {
            "shape": list(self.shape),
            "mesh": list(self.mesh.dims),
            "dists": [d.kind for d in self.dists],
        }

    @classmethod
    def from_description(cls, desc: dict) -> "DataSchema":
        return cls.build(desc["shape"], desc["mesh"], desc["dists"])

    def __repr__(self) -> str:
        dd = ",".join(repr(d) for d in self.dists)
        return f"DataSchema({'x'.join(map(str, self.shape))} as [{dd}] on {self.mesh!r})"

"""Data schemas: array shape x mesh x distribution -> chunk geometry.

A :class:`DataSchema` answers the questions Panda's clients and servers
ask during plan formation:

- which region of the array does mesh position *p* hold?  (`chunk_region`)
- what are all the chunks, in canonical order?  (`chunks`)
- which chunks intersect a given region?  (`chunks_intersecting`)

"Natural chunking" (the paper's default) is simply a disk
:class:`DataSchema` equal to the memory one.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Sequence, Tuple, Union

from repro.counters import COUNTERS
from repro.schema.distribution import Dist, block_span, parse_dist
from repro.schema.layout import Mesh
from repro.schema.regions import Region

__all__ = ["Chunk", "DataSchema"]

#: per-schema bound on memoised chunks_intersecting query regions; the
#: distinct sub-chunk regions of any one plan are far fewer.
_INTERSECT_CACHE_MAX = 4096


@dataclass(frozen=True)
class Chunk:
    """One chunk of a schema: its canonical id, the mesh coordinates of
    its owner position, and its global region.  May be empty when the
    HPF BLOCK rule leaves trailing mesh positions without data."""

    index: int
    mesh_coords: Tuple[int, ...]
    region: Region

    @property
    def empty(self) -> bool:
        return self.region.empty


@dataclass(frozen=True)
class DataSchema:
    """An HPF BLOCK/* decomposition of an array over a mesh.

    ``dists`` has one directive per *array* dimension; the directives
    that are ``BLOCK`` consume mesh dimensions in order, so the number
    of BLOCK directives must equal the mesh rank.  (This matches the
    paper's API, where ``memory_layout = {8, 8}`` pairs with
    ``{BLOCK, BLOCK, NONE}``.)
    """

    shape: Tuple[int, ...]
    mesh: Mesh
    dists: Tuple[Dist, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dists", tuple(parse_dist(d) for d in self.dists))
        if not self.shape:
            raise ValueError("array rank must be >= 1")
        if any(s < 1 for s in self.shape):
            raise ValueError(f"array shape must be positive: {self.shape}")
        if len(self.dists) != len(self.shape):
            raise ValueError(
                f"{len(self.dists)} directives for rank-{len(self.shape)} array"
            )
        for d in self.dists:
            if d.kind == "CYCLIC":
                raise NotImplementedError(
                    "CYCLIC distributions are outside Panda's chunk model "
                    "(one hyper-rectangle per mesh position); use BLOCK or *"
                )
        n_block = sum(1 for d in self.dists if d.distributed)
        if n_block != self.mesh.ndim:
            raise ValueError(
                f"schema has {n_block} BLOCK dimensions but the mesh has "
                f"rank {self.mesh.ndim}; they must match"
            )

    # -- factory -----------------------------------------------------------
    @classmethod
    def build(
        cls,
        shape: Sequence[int],
        mesh_dims: Sequence[int],
        dists: Sequence[Union[str, Dist]],
    ) -> "DataSchema":
        return cls(tuple(shape), Mesh(tuple(mesh_dims)), tuple(parse_dist(d) for d in dists))

    # -- geometry -----------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_chunks(self) -> int:
        """Number of mesh positions (= chunks, some possibly empty)."""
        return self.mesh.size

    @property
    def full_region(self) -> Region:
        return Region.from_shape(self.shape)

    def chunk_region(self, mesh_coords: Sequence[int]) -> Region:
        """The global region held by the given mesh position."""
        coords = tuple(mesh_coords)
        if len(coords) != self.mesh.ndim:
            raise ValueError(
                f"mesh coords rank {len(coords)} != mesh rank {self.mesh.ndim}"
            )
        lo: List[int] = []
        hi: List[int] = []
        m = 0  # next mesh dimension to consume
        for extent, dist in zip(self.shape, self.dists):
            if dist.distributed:
                l, h = block_span(extent, self.mesh.dims[m], coords[m])
                m += 1
            else:
                l, h = 0, extent
            lo.append(l)
            hi.append(h)
        return Region(tuple(lo), tuple(hi))

    # -- geometry caches ---------------------------------------------------
    # The schema is immutable, so its chunk list and intersection
    # queries are pure; both are memoised on the instance (lazily, via
    # object.__setattr__ -- the attributes are not dataclass fields, so
    # equality and hashing are unaffected).  Plan formation asks these
    # questions once per sub-chunk per collective; a timestep loop or a
    # figure sweep repeats them thousands of times.

    def _chunk_list(self) -> Tuple[Chunk, ...]:
        """All chunks (including empty ones) by canonical id, cached."""
        try:
            return self._chunks_cache
        except AttributeError:
            chunks = tuple(
                Chunk(i, coords, self.chunk_region(coords))
                for i, coords in enumerate(self.mesh.iter_coords())
            )
            object.__setattr__(self, "_chunks_cache", chunks)
            return chunks

    def chunk(self, index: int) -> Chunk:
        """Chunk by canonical (row-major mesh) id."""
        chunks = self._chunk_list()
        if not 0 <= index < len(chunks):
            raise ValueError(
                f"mesh index {index} out of range (size {len(chunks)})"
            )
        return chunks[index]

    def chunks(self, include_empty: bool = False) -> Iterator[Chunk]:
        """All chunks in canonical order.  Empty chunks (possible when
        mesh dims exceed array extents) are skipped unless requested."""
        for c in self._chunk_list():
            if include_empty or not c.empty:
                yield c

    def chunks_intersecting(self, region: Region) -> List[Tuple[Chunk, Region]]:
        """All (chunk, overlap) pairs whose region meets ``region``,
        in canonical chunk order.  Memoised per (schema, region).

        Rather than scanning every chunk, the HPF BLOCK rule gives the
        candidate mesh coordinates directly: in each distributed
        dimension, blocks of size ``b = ceil(extent / parts)`` overlap
        ``[lo, hi)`` exactly for indices ``lo // b .. (hi - 1) // b``.
        The cartesian product of those per-dimension ranges, walked in
        row-major order, visits the intersecting chunks in ascending
        canonical id -- the same pairs, in the same order, as the scan.
        """
        try:
            cache = self._intersect_cache
        except AttributeError:
            cache = {}
            object.__setattr__(self, "_intersect_cache", cache)
        hit = cache.get(region)
        if hit is not None:
            COUNTERS.geom_cache_hits += 1
            return list(hit)
        COUNTERS.geom_cache_misses += 1
        out: List[Tuple[Chunk, Region]] = []
        if not region.empty:
            chunks = self._chunk_list()
            dims = self.mesh.dims
            ranges: List[range] = []
            m = 0
            feasible = True
            for extent, dist, rl, rh in zip(
                self.shape, self.dists, region.lo, region.hi
            ):
                if dist.distributed:
                    parts = dims[m]
                    b = -(-extent // parts)
                    lo_i = max(0, rl // b)
                    hi_i = min(parts - 1, (rh - 1) // b)
                    if lo_i > hi_i:
                        feasible = False
                        break
                    ranges.append(range(lo_i, hi_i + 1))
                    m += 1
            if feasible:
                for coords in product(*ranges):
                    idx = 0
                    for d, c in zip(dims, coords):
                        idx = idx * d + c
                    chunk = chunks[idx]
                    overlap = chunk.region.intersect(region)
                    if overlap is not None:
                        out.append((chunk, overlap))
        if len(cache) >= _INTERSECT_CACHE_MAX:
            cache.clear()
        cache[region] = tuple(out)
        return out

    def owner_of_point(self, point: Sequence[int]) -> Chunk:
        """The chunk containing ``point`` (computed directly, not by
        search)."""
        coords: List[int] = []
        m = 0
        for extent, dist, p in zip(self.shape, self.dists, point):
            if not 0 <= p < extent:
                raise ValueError(f"point {tuple(point)} outside array {self.shape}")
            if dist.distributed:
                parts = self.mesh.dims[m]
                b = -(-extent // parts)
                coords.append(p // b)
                m += 1
        idx = self.mesh.index_of(tuple(coords))
        return self.chunk(idx)

    # -- descriptions -------------------------------------------------------
    def describe(self) -> dict:
        """A plain-data description (what travels in the collective
        request and what the ``.schema`` file stores)."""
        return {
            "shape": list(self.shape),
            "mesh": list(self.mesh.dims),
            "dists": [d.kind for d in self.dists],
        }

    @classmethod
    def from_description(cls, desc: dict) -> "DataSchema":
        return cls.build(desc["shape"], desc["mesh"], desc["dists"])

    def __repr__(self) -> str:
        dd = ",".join(repr(d) for d in self.dists)
        return f"DataSchema({'x'.join(map(str, self.shape))} as [{dd}] on {self.mesh!r})"

"""Logical processor meshes.

A :class:`Mesh` names the grid of positions an array is decomposed
over: the paper's ``ArrayLayout("memory layout", 2, {8, 8})`` is an
8x8 mesh of 64 compute nodes, and the logical I/O-node mesh for a
``BLOCK,*,*`` disk schema on ``n`` servers is ``Mesh((n,))``.

Positions are numbered in row-major order, which is how Panda binds
mesh positions to MPI ranks (client ranks) or to server indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

__all__ = ["Mesh"]


@dataclass(frozen=True)
class Mesh:
    """A logical grid of processor positions with row-major numbering."""

    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("mesh must have rank >= 1")
        if any(d < 1 for d in self.dims):
            raise ValueError(f"mesh dims must be positive: {self.dims}")
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        """Number of positions in the mesh."""
        n = 1
        for d in self.dims:
            n *= d
        return n

    def coords_of(self, index: int) -> Tuple[int, ...]:
        """Row-major coordinates of position ``index``."""
        if not 0 <= index < self.size:
            raise ValueError(f"mesh index {index} out of range (size {self.size})")
        coords = []
        for d in reversed(self.dims):
            coords.append(index % d)
            index //= d
        return tuple(reversed(coords))

    def index_of(self, coords: Sequence[int]) -> int:
        """Row-major position number of ``coords``."""
        if len(coords) != self.ndim:
            raise ValueError(f"coords rank {len(coords)} != mesh rank {self.ndim}")
        idx = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise ValueError(f"mesh coords {tuple(coords)} out of range {self.dims}")
            idx = idx * d + c
        return idx

    def iter_coords(self) -> Iterator[Tuple[int, ...]]:
        """All positions in row-major order."""
        for i in range(self.size):
            yield self.coords_of(i)

    def __repr__(self) -> str:
        return "Mesh(" + "x".join(str(d) for d in self.dims) + ")"

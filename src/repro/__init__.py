"""Reproduction of "Server-Directed Collective I/O in Panda" (SC '95).

The package implements Panda 2.0 -- a collective-I/O library for
multidimensional arrays -- together with the simulated IBM SP2 it ran
on, the baseline strategies it was compared against, and a benchmark
harness that regenerates every table and figure of the paper's
evaluation.  See README.md for the tour, DESIGN.md for the system
inventory, docs/PROTOCOL.md for the protocol walkthrough, and
EXPERIMENTS.md for the paper-vs-measured record.

Most applications only need the top-level names re-exported here::

    from repro import Array, ArrayGroup, ArrayLayout, BLOCK, NONE, PandaRuntime

Subsystems (importable individually):

- :mod:`repro.core` -- the Panda library (the paper's contribution)
- :mod:`repro.schema` -- HPF-style chunking algebra
- :mod:`repro.sim` -- discrete-event simulation engine
- :mod:`repro.mpi` -- message-passing substrate (Table 1 calibration)
- :mod:`repro.fs` -- per-I/O-node file-system model
- :mod:`repro.baselines` -- two-phase, traditional-caching,
  naive-striping and client-directed comparison strategies
- :mod:`repro.bench` -- experiment harness, statistics, timelines
- :mod:`repro.machine` -- the NAS SP2 machine specification
"""

from repro.core import (
    Array,
    ArrayGroup,
    ArrayLayout,
    BLOCK,
    NONE,
    PandaConfig,
    PandaRuntime,
    RunResult,
    best_disk_schema,
    predict_arrays,
)
from repro.faults import FaultRecoveryError, FaultSpec
from repro.machine import KB, MB, NAS_SP2, MachineSpec, sp2

__version__ = "2.0.0"

__all__ = [
    "Array",
    "ArrayGroup",
    "ArrayLayout",
    "BLOCK",
    "FaultRecoveryError",
    "FaultSpec",
    "KB",
    "MB",
    "MachineSpec",
    "NAS_SP2",
    "NONE",
    "PandaConfig",
    "PandaRuntime",
    "RunResult",
    "best_disk_schema",
    "predict_arrays",
    "sp2",
    "__version__",
]

"""Two-phase I/O [Bordawekar93]: the compute-node-side optimisation.

For a write:

- **phase 1 (permute)**: the compute nodes redistribute data among
  themselves so that each holds a *conforming* piece of the file --
  client *i* of *C* ends up with the ``i``-th consecutive segment of
  the row-major array.  One message per (source, destination) pair
  carries all of the source's data for that destination (the classic
  all-to-all).
- **phase 2 (I/O)**: each client streams its contiguous segment to the
  I/O nodes in large (stripe-sized, default 1 MB) requests.  Each
  server's file receives long sequential runs, broken only when the
  server switches between client streams.

Reads run the phases in reverse.  Compared to Panda, two-phase achieves
similar disk efficiency when disk-bound, but (a) it spends extra
network bandwidth and compute-node memory on the permutation, (b) the
compute nodes -- not the I/O nodes -- must understand the file layout,
and (c) interleaving of client streams still costs occasional seeks.

Only ``BLOCK``/``*`` memory schemas are supported (same vocabulary as
Panda), and the file layout is always row-major (that is the layout
two-phase targets).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.common import (
    BaselineResult,
    BaselineRuntime,
    BaselineTags,
)
from repro.core.protocol import ArraySpec
from repro.mpi.datatypes import DataBlock
from repro.schema.regions import Region

__all__ = ["run_two_phase", "conforming_segment", "transfer_matrix"]


def conforming_segment(total_elems: int, n_clients: int, rank: int) -> Tuple[int, int]:
    """Element range ``[lo, hi)`` of the conforming distribution's
    segment for ``rank`` (HPF BLOCK rule over the linearised array)."""
    seg = -(-total_elems // n_clients)
    lo = min(rank * seg, total_elems)
    hi = min(lo + seg, total_elems)
    return lo, hi


class _RunIndex:
    """Maps global element offsets back into a rank's local chunk."""

    def __init__(self, spec: ArraySpec, rank: int) -> None:
        full = Region.from_shape(spec.shape)
        region = spec.memory_schema.chunk(rank).region
        self.runs: List[Tuple[int, int, int]] = []  # (goff, elems, loff)
        if not region.empty:
            for start, elems in region.iter_runs_within(full):
                self.runs.append(
                    (full.linear_offset_of(start), elems,
                     region.linear_offset_of(start))
                )
        self._starts = [r[0] for r in self.runs]

    def overlaps(self, lo: int, hi: int) -> List[Tuple[int, int, int]]:
        """(goff, elems, loff) pieces of this chunk inside global element
        range [lo, hi)."""
        out = []
        idx = bisect.bisect_right(self._starts, lo) - 1
        idx = max(idx, 0)
        for goff, elems, loff in self.runs[idx:]:
            if goff >= hi:
                break
            o_lo = max(goff, lo)
            o_hi = min(goff + elems, hi)
            if o_hi > o_lo:
                out.append((o_lo, o_hi - o_lo, loff + (o_lo - goff)))
        return out


def transfer_matrix(spec: ArraySpec, n_clients: int) -> np.ndarray:
    """bytes[src, dst] moved during the permutation phase."""
    total = int(np.prod(spec.shape))
    mat = np.zeros((n_clients, n_clients), dtype=np.int64)
    seg = -(-total // n_clients)
    full = Region.from_shape(spec.shape)
    for src in range(n_clients):
        region = spec.memory_schema.chunk(src).region
        if region.empty:
            continue
        for start, elems in region.iter_runs_within(full):
            goff = full.linear_offset_of(start)
            end = goff + elems
            j = goff // seg
            pos = goff
            while pos < end:
                j_hi = min((j + 1) * seg, end)
                mat[src, j] += (j_hi - pos) * spec.itemsize
                pos = j_hi
                j += 1
    return mat


def _client(rank: int, rt: BaselineRuntime, spec: ArraySpec, kind: str,
            data: Optional[Dict[int, np.ndarray]], path: str,
            matrix: np.ndarray):
    comm = rt.network.comm(rank)
    total = int(np.prod(spec.shape))
    C = rt.n_compute
    seg_lo, seg_hi = conforming_segment(total, C, rank)
    seg_elems = seg_hi - seg_lo
    layout = rt.layout(spec.nbytes)
    index = _RunIndex(spec, rank)
    real = rt.real_payloads
    local = data[rank].reshape(-1) if (real and data is not None) else None
    spec_dtype = spec.np_dtype
    incoming = [s for s in range(C) if s != rank and matrix[s, rank] > 0]

    def permute_out():
        """Send my chunk's pieces to their segment owners; copy my own."""
        pieces_by_dst: Dict[int, List[Tuple[int, int, int]]] = {}
        seg = -(-total // C)
        for goff, elems, loff in index.runs:
            pos = goff
            while pos < goff + elems:
                j = pos // seg
                span = min((j + 1) * seg, goff + elems) - pos
                pieces_by_dst.setdefault(j, []).append(
                    (pos, span, loff + (pos - goff))
                )
                pos += span
        return pieces_by_dst

    def gen():
        buf = np.zeros(seg_elems, dtype=spec_dtype) if real else None
        pieces_by_dst = permute_out()

        if kind == "write":
            # --- phase 1: permute ---------------------------------------
            for dst in sorted(pieces_by_dst):
                pieces = pieces_by_dst[dst]
                nbytes = sum(p[1] for p in pieces) * spec.itemsize
                if dst == rank:
                    # local pieces: one gather pass
                    yield from comm.copy(nbytes, len(pieces))
                    if real:
                        for goff, elems, loff in pieces:
                            buf[goff - seg_lo : goff - seg_lo + elems] = \
                                local[loff : loff + elems]
                    continue
                if real:
                    payload = [
                        (goff, np.ascontiguousarray(local[loff : loff + elems]))
                        for goff, elems, loff in pieces
                    ]
                else:
                    payload = [(goff, elems) for goff, elems, _ in pieces]
                yield from comm.copy(nbytes, len(pieces))  # pack
                yield from comm.send(dst, BaselineTags.PERMUTE,
                                     ("w", payload), nbytes=nbytes)
            for _src in incoming:
                msg = yield from comm.recv(tag=BaselineTags.PERMUTE)
                yield from comm.handle()
                _mode, payload = msg.payload
                nbytes = msg.nbytes
                yield from comm.copy(nbytes, len(payload))  # unpack
                if real:
                    for goff, piece in payload:
                        buf[goff - seg_lo : goff - seg_lo + piece.size] = piece
            # --- phase 2: large contiguous I/O ---------------------------
            pos_b = seg_lo * spec.itemsize
            end_b = seg_hi * spec.itemsize
            while pos_b < end_b:
                for server, soff, nb in layout.map(
                    pos_b, min(rt.stripe_bytes - pos_b % rt.stripe_bytes,
                               end_b - pos_b)
                ):
                    if real:
                        lo_e = pos_b // spec.itemsize - seg_lo
                        block = DataBlock.real(
                            buf[lo_e : lo_e + nb // spec.itemsize]
                        )
                    else:
                        block = DataBlock.virtual(nb)
                    dst = rt.server_rank(server)
                    yield from comm.send(dst, BaselineTags.WRITE,
                                         (soff, nb, block), nbytes=nb)
                    yield from comm.recv(src=dst, tag=BaselineTags.ACK)
                    pos_b += nb
        else:
            # --- phase 1 (read): large contiguous I/O --------------------
            pos_b = seg_lo * spec.itemsize
            end_b = seg_hi * spec.itemsize
            while pos_b < end_b:
                for server, soff, nb in layout.map(
                    pos_b, min(rt.stripe_bytes - pos_b % rt.stripe_bytes,
                               end_b - pos_b)
                ):
                    dst = rt.server_rank(server)
                    yield from comm.send(dst, BaselineTags.READ,
                                         (soff, nb, None))
                    msg = yield from comm.recv(src=dst, tag=BaselineTags.DATA)
                    if real:
                        lo_e = pos_b // spec.itemsize - seg_lo
                        buf[lo_e : lo_e + nb // spec.itemsize] = \
                            msg.payload.array.view(spec_dtype)
                    pos_b += nb
            # --- phase 2 (read): permute back -- the flow reverses: each
            # segment owner sends chunk-owners the pieces of its segment
            # they need
            out_targets = [
                d for d in range(C) if d != rank and matrix[d, rank] > 0
            ]
            for dst in sorted(out_targets):
                other = _RunIndex(spec, dst)
                pieces = other.overlaps(seg_lo, seg_hi)
                nbytes = sum(p[1] for p in pieces) * spec.itemsize
                yield from comm.copy(nbytes, len(pieces))  # pack
                if real:
                    payload = [
                        (goff,
                         np.ascontiguousarray(
                             buf[goff - seg_lo : goff - seg_lo + elems]
                         ))
                        for goff, elems, _loff in pieces
                    ]
                else:
                    payload = [(goff, elems) for goff, elems, _ in pieces]
                yield from comm.send(dst, BaselineTags.PERMUTE,
                                     ("r", payload), nbytes=nbytes)
            # local pieces of my own chunk
            own = index.overlaps(seg_lo, seg_hi)
            own_bytes = sum(p[1] for p in own) * spec.itemsize
            if own:
                yield from comm.copy(own_bytes, len(own))
                if real:
                    for goff, elems, loff in own:
                        local[loff : loff + elems] = \
                            buf[goff - seg_lo : goff - seg_lo + elems]
            # receive my chunk's pieces from the other segment owners
            expect = [s for s in range(C)
                      if s != rank and matrix[rank, s] > 0]
            for _src in expect:
                msg = yield from comm.recv(tag=BaselineTags.PERMUTE)
                yield from comm.handle()
                _mode, payload = msg.payload
                yield from comm.copy(msg.nbytes, len(payload))
                if real:
                    for goff, piece in payload:
                        for o_goff, o_elems, o_loff in index.overlaps(
                            goff, goff + piece.size
                        ):
                            local[o_loff : o_loff + o_elems] = piece[
                                o_goff - goff : o_goff - goff + o_elems
                            ]

    return gen()


def run_two_phase(
    rt: BaselineRuntime,
    spec: ArraySpec,
    kind: str,
    data: Optional[Dict[int, np.ndarray]] = None,
    dataset: str = "twophase",
) -> BaselineResult:
    """Run one two-phase write or read of ``spec`` on ``rt``.  Use a
    runtime with a large ``stripe_bytes`` (e.g. 1 MB) so phase 2 issues
    large requests -- that is the method's whole point."""
    if kind not in ("write", "read"):
        raise ValueError(f"bad kind {kind!r}")
    matrix = transfer_matrix(spec, rt.n_compute)
    path = f"{dataset}.striped"
    elapsed = rt.execute(
        path,
        lambda rank, rt_: _client(rank, rt_, spec, kind, data, path, matrix),
        flush=(kind == "write"),
    )
    return BaselineResult(
        strategy="two-phase", kind=kind, total_bytes=spec.nbytes,
        elapsed=elapsed, runtime=rt,
    )

"""Baseline collective-I/O strategies the paper compares against.

The paper's related-work section (and [Kotz94b]'s taxonomy) names three
alternatives to server-directed I/O; we implement all of them on the
same simulated machine so the benchmark harness can reproduce the
qualitative comparison:

- :mod:`repro.baselines.naive_striping` -- **compute-node-directed,
  uncached**: every client writes/reads its own strided pieces of a
  striped row-major file directly, in its own order.  The disk sees
  many small non-sequential requests ("servicing disk i/o requests as
  they arrive in random order").
- :mod:`repro.baselines.traditional` -- **traditional caching** (Intel
  CFS style, [Pierce93]): same request stream, but each I/O node runs a
  Unix-style buffer cache with prefetch and write-behind.  The cache
  recovers part of the loss; [Kotz93b] measured CFS at about half the
  raw disk bandwidth.
- :mod:`repro.baselines.two_phase` -- **two-phase I/O**
  ([Bordawekar93]): compute nodes first permute data among themselves
  into a distribution conforming to the file layout, then perform
  large contiguous I/O.

All three move real bytes (verified against the written layout) and
share the infrastructure in :mod:`repro.baselines.common`.
"""

from repro.baselines.client_directed import run_client_directed
from repro.baselines.common import (
    BaselineResult,
    BaselineRuntime,
    StripedLayout,
)
from repro.baselines.naive_striping import run_naive_striping
from repro.baselines.traditional import run_traditional_caching
from repro.baselines.two_phase import run_two_phase

__all__ = [
    "BaselineResult",
    "BaselineRuntime",
    "StripedLayout",
    "run_client_directed",
    "run_naive_striping",
    "run_traditional_caching",
    "run_two_phase",
]

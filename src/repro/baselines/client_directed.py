"""Client-directed chunked I/O: the ablation of server direction itself.

Panda's disk layout (chunked schemas, round-robin chunk striping, 1 MB
sub-chunks) and its server-directed flow control are separable ideas.
This baseline keeps the **exact same on-disk layout** -- it reuses
Panda's own `build_server_plan` -- but inverts the control flow back to
a traditional client/server shape: each compute node pushes the
sub-chunk pieces *it* holds, in *its own* traversal order, to the
owning I/O daemons, which write each piece at its planned file offset
as it arrives.

What is lost without server direction:

- servers no longer receive sub-chunks in file order, so their writes
  interleave offsets from many clients and pay seeks;
- a sub-chunk gathered from several clients arrives in fragments that
  must be written (or re-buffered) separately -- we model the honest
  variant where each piece is its own file request, which also makes
  requests smaller than 1 MB whenever memory and disk schemas differ.

Under natural chunking each client's pieces are whole sub-chunks of its
own chunks, so the *per-client* streams are sequential and the damage
is limited to inter-client interleaving; under a reorganising schema
the damage is much larger.  ``bench_server_direction_ablation.py``
quantifies both.

The written files are byte-identical to Panda's (verified by tests), so
datasets written either way are interchangeable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.common import BaselineResult, BaselineRuntime, BaselineTags
from repro.core.config import PandaConfig
from repro.core.plan import build_server_plan, dataset_file
from repro.core.protocol import CollectiveOp
from repro.mpi.datatypes import DataBlock
from repro.schema.regions import Region
from repro.schema.reorganize import extract_region

__all__ = ["run_client_directed", "client_piece_schedule"]


def client_piece_schedule(
    op: CollectiveOp,
    n_servers: int,
    config: PandaConfig,
    mesh_position: int,
) -> List[Tuple[int, int, Region, int, int]]:
    """What one client pushes, in its own (array, chunk, sub-chunk)
    order: ``(server, file_offset, piece_region, nbytes, array_index)``
    for every intersection between the client's memory chunks and every
    planned sub-chunk."""
    out = []
    for s in range(n_servers):
        plan = build_server_plan(op, s, n_servers, config)
        for item in plan.items:
            spec = op.arrays[item.array_index]
            my_chunk = spec.memory_schema.chunk(mesh_position).region
            overlap = item.region.intersect(my_chunk)
            if overlap is None:
                continue
            # offset of the piece within the sub-chunk's file extent:
            # pieces of a sub-chunk are disjoint regions; we write each
            # at the offset of its first element within the sub-chunk's
            # row-major order (correct whenever the piece is a prefix of
            # rows -- guaranteed here because pieces span the sub-chunk's
            # trailing dims wherever they are contiguous; for strided
            # pieces each run is written separately below).
            runs = list(overlap.iter_runs_within(item.region))
            for start, elems in runs:
                off = (item.file_offset
                       + item.region.linear_offset_of(start) * spec.itemsize)
                run_region = _run_region(start, elems, item.region)
                out.append((s, off, run_region, elems * spec.itemsize,
                            item.array_index))
    return out


def _run_region(start, elems, container: Region) -> Region:
    off = container.linear_offset_of(start) + elems - 1
    last = container.point_at_linear_offset(off)
    return Region(start, tuple(c + 1 for c in last))


def _client(rank: int, rt: BaselineRuntime, op: CollectiveOp,
            config: PandaConfig, kind: str,
            data: Optional[Dict[int, Dict[str, np.ndarray]]]):
    comm = rt.network.comm(rank)
    schedule = client_piece_schedule(op, rt.n_io, config, rank)
    real = rt.real_payloads

    def gen():
        for server, off, region, nbytes, ai in schedule:
            spec = op.arrays[ai]
            chunk_region = spec.memory_schema.chunk(rank).region
            dst = rt.server_rank(server)
            if kind == "write":
                if real:
                    local = data[rank][spec.name]
                    piece = extract_region(local, chunk_region.lo, region)
                    block = DataBlock.real(piece)
                else:
                    block = DataBlock.virtual(nbytes)
                runs, _ = region.contiguous_runs_within(chunk_region)
                if runs > 1:
                    yield from comm.copy(nbytes, runs)
                yield from comm.send(dst, BaselineTags.WRITE,
                                     (off, nbytes, block), nbytes=nbytes)
                yield from comm.recv(src=dst, tag=BaselineTags.ACK)
            else:
                yield from comm.send(dst, BaselineTags.READ,
                                     (off, nbytes, None))
                msg = yield from comm.recv(src=dst, tag=BaselineTags.DATA)
                if real:
                    local = data[rank][spec.name]
                    from repro.schema.reorganize import inject_region
                    got = msg.payload.array.view(spec.np_dtype).reshape(
                        region.shape
                    )
                    inject_region(local, chunk_region.lo, region, got)

    return gen()


def run_client_directed(
    rt: BaselineRuntime,
    op: CollectiveOp,
    kind: str,
    data: Optional[Dict[int, Dict[str, np.ndarray]]] = None,
    config: Optional[PandaConfig] = None,
) -> BaselineResult:
    """Run one client-directed write or read of ``op`` on ``rt``.

    ``data`` maps mesh position -> {array name: local chunk}.  The
    daemons write each server's file under Panda's own
    ``dataset_file`` naming, so the result is directly comparable (and
    byte-identical) to a Panda-written dataset.

    Note: the daemon infrastructure serves one file path per phase, so
    this runner executes one phase per server file -- all servers in
    parallel, as in Panda.
    """
    if kind not in ("write", "read"):
        raise ValueError(f"bad kind {kind!r}")
    config = config or PandaConfig()
    mesh_size = op.arrays[0].memory_schema.mesh.size
    if mesh_size != rt.n_compute:
        raise ValueError(
            f"memory mesh ({mesh_size}) must match compute nodes "
            f"({rt.n_compute})"
        )
    total = op.total_bytes

    # the daemons all serve the same logical dataset; per-server paths
    path_of = {s: dataset_file(op.dataset, s) for s in range(rt.n_io)}

    # BaselineRuntime daemons take a single path; wrap them: we spawn
    # our own daemons, one per server, bound to that server's file.
    t0 = rt.sim.now
    daemon_procs = [
        rt.sim.spawn(rt._daemon(s, path_of[s]), name=f"cd-daemon{s}")
        for s in range(rt.n_io)
    ]
    client_procs = [
        rt.sim.spawn(_client(rank, rt, op, config, kind, data),
                     name=f"cd-client{rank}")
        for rank in range(rt.n_compute)
    ]
    rt.sim.spawn(
        rt._supervisor(client_procs, daemon_procs, flush=(kind == "write")),
        name="cd-supervisor",
    )
    try:
        rt.sim.run()
    except Exception as sim_exc:
        for p in client_procs + daemon_procs:
            if p.triggered and p.exception is not None:
                raise p.exception from sim_exc
        raise
    for p in client_procs + daemon_procs:
        if p.triggered and p.exception is not None:
            raise p.exception
    return BaselineResult(
        strategy="client-directed", kind=kind, total_bytes=total,
        elapsed=rt.sim.now - t0, runtime=rt,
    )

"""Shared infrastructure for the baseline I/O strategies.

The baselines model the pre-collective-I/O world: a striped row-major
file served by per-I/O-node daemons that process read/write requests
in arrival order.  :class:`BaselineRuntime` mirrors
:class:`repro.core.runtime.PandaRuntime` (same machine model, same
network, same file systems) so elapsed times are directly comparable.

File model: one logical file per dataset, striped round-robin across
the I/O nodes in fixed-size stripe units (:class:`StripedLayout`).
Each I/O node stores its stripes contiguously in a local file, exactly
like Intel CFS or a striped NFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.fs.cache import BufferCache
from repro.fs.filesystem import FileSystem
from repro.machine import MB, NAS_SP2, MachineSpec
from repro.mpi.datatypes import DataBlock
from repro.mpi.network import Network
from repro.sim import Simulator
from repro.sim.trace import Trace

__all__ = ["BaselineTags", "StripedLayout", "BaselineRuntime", "BaselineResult"]


class BaselineTags:
    WRITE = 30
    READ = 31
    ACK = 32
    DATA = 33
    FLUSH = 34
    FLUSH_ACK = 35
    SHUTDOWN = 36
    #: client-to-client transfers during two-phase permutation
    PERMUTE = 37


@dataclass(frozen=True)
class StripedLayout:
    """Round-robin striping of a linear byte space across servers."""

    total_bytes: int
    n_servers: int
    stripe_bytes: int

    def __post_init__(self) -> None:
        if self.stripe_bytes < 1 or self.n_servers < 1:
            raise ValueError("bad striping parameters")

    def map(self, offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Split ``[offset, offset+nbytes)`` at stripe boundaries.
        Returns ``(server, server_local_offset, nbytes)`` pieces in
        ascending global-offset order."""
        if offset < 0 or offset + nbytes > self.total_bytes:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside file of "
                f"{self.total_bytes} bytes"
            )
        out = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            unit = pos // self.stripe_bytes
            unit_end = (unit + 1) * self.stripe_bytes
            span = min(end, unit_end) - pos
            server = unit % self.n_servers
            local = (unit // self.n_servers) * self.stripe_bytes + (
                pos - unit * self.stripe_bytes
            )
            out.append((server, local, span))
            pos += span
        return out

    def server_bytes(self, server: int) -> int:
        """Total bytes held by ``server``."""
        full_units = self.total_bytes // self.stripe_bytes
        rem = self.total_bytes - full_units * self.stripe_bytes
        if full_units > server:
            n = (full_units - server - 1) // self.n_servers + 1
        else:
            n = 0
        total = n * self.stripe_bytes
        if rem and full_units % self.n_servers == server:
            total += rem
        return total

    def gather_bytes(self, stores: Dict[int, bytes]) -> bytes:
        """Reassemble the linear file from per-server byte strings."""
        out = bytearray(self.total_bytes)
        pos = 0
        while pos < self.total_bytes:
            for server, local, span in self.map(
                pos, min(self.stripe_bytes - pos % self.stripe_bytes,
                         self.total_bytes - pos)
            ):
                out[pos : pos + span] = stores[server][local : local + span]
                pos += span
        return bytes(out)


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    strategy: str
    kind: str
    total_bytes: int
    elapsed: float
    runtime: "BaselineRuntime"

    @property
    def throughput(self) -> float:
        return self.total_bytes / self.elapsed if self.elapsed > 0 else float("inf")


@dataclass
class _ServerState:
    fs: FileSystem
    cache: Optional[BufferCache]


class BaselineRuntime:
    """Machine + I/O daemons for the baseline strategies.

    ``use_cache`` enables the per-I/O-node buffer cache (traditional
    caching); without it requests go straight to the disk model (naive
    striping, and the data path of two-phase I/O).
    """

    def __init__(
        self,
        n_compute: int,
        n_io: int,
        spec: MachineSpec = NAS_SP2,
        real_payloads: bool = True,
        use_cache: bool = False,
        cache_bytes: int = 8 * MB,
        cache_block_bytes: int = 64 * 1024,
        stripe_bytes: int = 64 * 1024,
        trace: bool = False,
    ) -> None:
        if n_compute < 1 or n_io < 1:
            raise ValueError("need at least one compute and one I/O node")
        self.n_compute = n_compute
        self.n_io = n_io
        self.spec = spec
        self.real_payloads = real_payloads
        self.stripe_bytes = stripe_bytes
        self.trace = Trace() if trace else None
        self.sim = Simulator()
        self.network = Network(self.sim, spec, n_compute + n_io, trace=self.trace)
        self.servers: List[_ServerState] = []
        for i in range(n_io):
            fs = FileSystem(self.sim, spec, node=f"ionode{i}",
                            real=real_payloads, trace=self.trace)
            cache = None
            if use_cache:
                cache = BufferCache(
                    self.sim, spec, fs.disk, fs.store,
                    capacity_bytes=cache_bytes,
                    block_bytes=cache_block_bytes,
                    trace=self.trace, node=f"ionode{i}.cache",
                )
            self.servers.append(_ServerState(fs=fs, cache=cache))

    def server_rank(self, i: int) -> int:
        return self.n_compute + i

    def layout(self, total_bytes: int) -> StripedLayout:
        return StripedLayout(total_bytes, self.n_io, self.stripe_bytes)

    # -- the I/O daemon -----------------------------------------------------
    def _daemon(self, index: int, path: str):
        """Serve read/write requests in arrival order until shutdown."""
        comm = self.network.comm(self.server_rank(index))
        state = self.servers[index]
        state.fs.store.create(path, truncate=False)
        listen = {BaselineTags.WRITE, BaselineTags.READ, BaselineTags.FLUSH,
                  BaselineTags.SHUTDOWN}
        while True:
            msg = yield from comm.recv(tags=listen)
            if msg.tag == BaselineTags.SHUTDOWN:
                return
            yield from comm.handle()
            if msg.tag == BaselineTags.FLUSH:
                if state.cache is not None:
                    yield from state.cache.flush(path)
                yield from comm.send(msg.src, BaselineTags.FLUSH_ACK)
                continue
            offset, nbytes, block = msg.payload
            if msg.tag == BaselineTags.WRITE:
                data = block.to_bytes() if (block.is_real and state.fs.real) else None
                if state.cache is not None:
                    yield from state.cache.write(path, offset, data, nbytes)
                else:
                    yield from state.fs.disk.access(path, offset, nbytes,
                                                    write=True)
                    state.fs.store.write(path, offset, data, nbytes)
                yield from comm.send(msg.src, BaselineTags.ACK)
            else:  # READ
                if state.cache is not None:
                    raw = yield from state.cache.read(path, offset, nbytes)
                else:
                    yield from state.fs.disk.access(path, offset, nbytes,
                                                    write=False)
                    raw = state.fs.store.read(path, offset, nbytes)
                if raw is not None:
                    reply = DataBlock.real(np.frombuffer(raw, dtype=np.uint8))
                else:
                    reply = DataBlock.virtual(nbytes)
                yield from comm.send(msg.src, BaselineTags.DATA, reply,
                                     nbytes=nbytes)

    # -- execution ---------------------------------------------------------------
    def execute(
        self,
        path: str,
        client_fn: Callable[[int, "BaselineRuntime"], object],
        *,
        flush: bool,
    ) -> float:
        """Run one phase: spawn daemons and per-rank clients, optionally
        flush caches at the end (write barrier + fsync), shut down.
        Returns the elapsed simulated time of the phase."""
        t0 = self.sim.now
        daemon_procs = [
            self.sim.spawn(self._daemon(i, path), name=f"bdaemon{i}")
            for i in range(self.n_io)
        ]
        client_procs = [
            self.sim.spawn(client_fn(rank, self), name=f"bclient{rank}")
            for rank in range(self.n_compute)
        ]
        self.sim.spawn(
            self._supervisor(client_procs, daemon_procs, flush),
            name="bsupervisor",
        )
        try:
            self.sim.run()
        except Exception as sim_exc:
            for p in client_procs + daemon_procs:
                if p.triggered and p.exception is not None:
                    raise p.exception from sim_exc
            raise
        for p in client_procs + daemon_procs:
            if p.triggered and p.exception is not None:
                raise p.exception
        return self.sim.now - t0

    def _supervisor(self, client_procs, daemon_procs, flush: bool):
        try:
            yield self.sim.all_of(client_procs)
        except Exception:
            pass
        comm = self.network.comm(0)
        if flush:
            for i in range(self.n_io):
                yield from comm.send(self.server_rank(i), BaselineTags.FLUSH)
                yield from comm.recv(src=self.server_rank(i),
                                     tag=BaselineTags.FLUSH_ACK)
        for i in range(self.n_io):
            yield from comm.send(self.server_rank(i), BaselineTags.SHUTDOWN)
        try:
            yield self.sim.all_of(daemon_procs)
        except Exception:
            pass

    # -- verification ----------------------------------------------------------
    def gather_file(self, path: str, total_bytes: int) -> bytes:
        """Reassemble the striped file's bytes (real mode)."""
        if not self.real_payloads:
            raise ValueError("gather_file requires real payloads")
        layout = self.layout(total_bytes)
        stores = {}
        for i, st in enumerate(self.servers):
            stores[i] = (
                st.fs.read_all_bytes(path) if st.fs.exists(path) else b""
            )
            # pad to expected length (sparse tails)
            need = layout.server_bytes(i)
            if len(stores[i]) < need:
                stores[i] = stores[i] + b"\x00" * (need - len(stores[i]))
        return layout.gather_bytes(stores)

"""Traditional caching: the Intel-CFS-style baseline.

Identical request stream to :mod:`repro.baselines.naive_striping` --
every compute node issues its own strided pieces in its own order --
but each I/O node serves requests through a Unix-style buffer cache
with sequential prefetch and write-behind (``use_cache=True`` on the
:class:`~repro.baselines.common.BaselineRuntime`).

This is the paper's "traditional caching" strawman: "Without a high
level semantic view of the collective i/o requests, the file system is
not able to predict whether sequential prefetching will be useful or
when to flush the file cache."  The cache coalesces what it can, but
interleaved strided streams from many clients evict blocks before
their neighbours arrive, so the disk still sees a large fraction of
small, non-sequential requests.  [Kotz93b] measured CFS at about half
the raw disk bandwidth; the benchmark harness reproduces that ballpark.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.common import BaselineResult, BaselineRuntime
from repro.baselines.naive_striping import _client
from repro.core.protocol import ArraySpec

__all__ = ["run_traditional_caching"]


def run_traditional_caching(
    rt: BaselineRuntime,
    spec: ArraySpec,
    kind: str,
    data: Optional[Dict[int, np.ndarray]] = None,
    dataset: str = "cfs",
) -> BaselineResult:
    """Run one traditional-caching write or read.  ``rt`` must have been
    built with ``use_cache=True``."""
    if kind not in ("write", "read"):
        raise ValueError(f"bad kind {kind!r}")
    if any(s.cache is None for s in rt.servers):
        raise ValueError(
            "traditional caching needs a BaselineRuntime(use_cache=True)"
        )
    layout = rt.layout(spec.nbytes)
    path = f"{dataset}.striped"
    elapsed = rt.execute(
        path,
        lambda rank, rt_: _client(rank, rt_, spec, kind, layout, data, path),
        flush=(kind == "write"),
    )
    return BaselineResult(
        strategy="traditional-caching", kind=kind, total_bytes=spec.nbytes,
        elapsed=elapsed, runtime=rt,
    )

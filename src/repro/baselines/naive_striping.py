"""Naive compute-node-directed striping: the no-optimisation baseline.

Every compute node translates its local chunk into (stripe, offset)
pieces of a striped row-major file and issues them directly, in its own
traversal order, with no cache and no coordination.  The disk at each
I/O node therefore sees an interleaving of small requests from many
clients -- "servicing disk i/o requests as they arrive in random order"
(paper, section 4) -- and pays per-request overhead and seeks on nearly
every one.

This is what a naive port of a sequential code to a striped file system
does, and the floor the other strategies are measured against.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.common import BaselineResult, BaselineRuntime, BaselineTags
from repro.core.protocol import ArraySpec
from repro.mpi.datatypes import DataBlock
from repro.schema.regions import Region

__all__ = ["run_naive_striping", "client_pieces"]


def client_pieces(spec: ArraySpec, rank: int, layout):
    """(global_byte_offset, local_elem_offset, server, server_offset,
    nbytes) pieces for one client's chunk, in the client's row-major
    traversal order."""
    full = Region.from_shape(spec.shape)
    region = spec.memory_schema.chunk(rank).region
    if region.empty:
        return
    for start, elems in region.iter_runs_within(full):
        goff = full.linear_offset_of(start) * spec.itemsize
        loff = region.linear_offset_of(start)
        run_bytes = elems * spec.itemsize
        consumed = 0
        for server, soff, nb in layout.map(goff, run_bytes):
            yield (goff + consumed, loff + consumed // spec.itemsize,
                   server, soff, nb)
            consumed += nb


def _client(rank: int, rt: BaselineRuntime, spec: ArraySpec, kind: str,
            layout, data: Optional[Dict[int, np.ndarray]], path: str):
    comm = rt.network.comm(rank)
    local = None
    if rt.real_payloads:
        local = data[rank].reshape(-1) if data is not None else None
        if kind == "read" and local is None:
            raise ValueError("read needs bound local arrays in real mode")

    def gen():
        for _goff, loff, server, soff, nb in client_pieces(spec, rank, layout):
            elems = nb // spec.itemsize
            if rt.real_payloads:
                block = DataBlock.real(local[loff : loff + elems])
            else:
                block = DataBlock.virtual(nb)
            dst = rt.server_rank(server)
            if kind == "write":
                yield from comm.send(dst, BaselineTags.WRITE,
                                     (soff, nb, block), nbytes=nb)
                yield from comm.recv(src=dst, tag=BaselineTags.ACK)
            else:
                yield from comm.send(dst, BaselineTags.READ,
                                     (soff, nb, None))
                msg = yield from comm.recv(src=dst, tag=BaselineTags.DATA)
                if rt.real_payloads:
                    reply: DataBlock = msg.payload
                    local[loff : loff + elems] = reply.array.view(
                        spec.np_dtype
                    )

    return gen()


def run_naive_striping(
    rt: BaselineRuntime,
    spec: ArraySpec,
    kind: str,
    data: Optional[Dict[int, np.ndarray]] = None,
    dataset: str = "naive",
) -> BaselineResult:
    """Run one naive-striping write or read of ``spec`` on ``rt``.

    ``data`` maps rank -> local chunk ndarray (real mode).  For reads
    the chunks are filled in place.
    """
    if kind not in ("write", "read"):
        raise ValueError(f"bad kind {kind!r}")
    layout = rt.layout(spec.nbytes)
    path = f"{dataset}.striped"
    elapsed = rt.execute(
        path,
        lambda rank, rt_: _client(rank, rt_, spec, kind, layout, data, path),
        flush=(kind == "write"),
    )
    return BaselineResult(
        strategy="naive-striping", kind=kind, total_bytes=spec.nbytes,
        elapsed=elapsed, runtime=rt,
    )
